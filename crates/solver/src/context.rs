//! [`SolveCx`]: per-session mutable state threaded through every solve.

use crate::error::SolveError;
use crate::request::SolveRequest;
use decss_shortcuts::{ShardPool, ShortcutWorkspace, WorkspaceArena};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The mutable context a [`Solver`](crate::Solver) runs in: the reusable
/// scratch (the heavy-traffic path — repeated solves on same-size
/// instances allocate nothing after the first call) plus the armed
/// deadline/cancellation state of the current request.
#[derive(Debug)]
pub struct SolveCx {
    arena: WorkspaceArena,
    pool: ShardPool,
    pool_cap: usize,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Default for SolveCx {
    fn default() -> Self {
        SolveCx {
            arena: WorkspaceArena::new(),
            pool: ShardPool::sequential(),
            pool_cap: usize::MAX,
            deadline: None,
            cancel: None,
        }
    }
}

impl SolveCx {
    /// A fresh context with empty scratch.
    pub fn new() -> Self {
        SolveCx::default()
    }

    /// Caps the OS threads any armed pool may spawn (the batch service
    /// sets this so K queue workers × P pool threads never oversubscribe
    /// the host). `0` is treated as 1.
    pub fn with_pool_cap(mut self, cap: usize) -> Self {
        self.set_pool_cap(cap);
        self
    }

    /// In-place form of [`SolveCx::with_pool_cap`], for contexts already
    /// embedded in a session. Takes effect at the next [`SolveCx::arm`].
    pub fn set_pool_cap(&mut self, cap: usize) {
        self.pool_cap = cap.max(1);
    }

    /// The shared flat scratch ([`ShortcutWorkspace`]) solvers thread
    /// through the shortcut pipeline. Grows to the largest instance
    /// seen, never shrinks. This is the arena's primary slot, so
    /// sequential and pooled solves reuse the same buffers.
    pub fn workspace(&mut self) -> &mut ShortcutWorkspace {
        self.arena.primary()
    }

    /// The shard pool armed for the current request (sequential until
    /// [`SolveCx::arm`] sees a request with a `shards` hint).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// The pool plus the workspace arena, split-borrowed for the pooled
    /// pipeline entry points.
    pub fn pool_scratch(&mut self) -> (&ShardPool, &mut WorkspaceArena) {
        (&self.pool, &mut self.arena)
    }

    /// Arms the deadline clock, cancellation flag, and shard pool for
    /// one solve. Called by [`SolverSession`](crate::SolverSession) at
    /// solve entry; call it yourself when driving a
    /// [`Solver`](crate::Solver) directly and you want the request's
    /// budget honored.
    pub fn arm(&mut self, req: &SolveRequest) {
        self.deadline = req.deadline.map(|budget| Instant::now() + budget);
        self.cancel = req.cancel.clone();
        self.pool = ShardPool::with_thread_cap(req.shards, self.pool_cap);
    }

    /// Phase-boundary check: errors if the armed cancellation flag is
    /// set or the armed deadline has passed. Solvers call this between
    /// phases (best-effort budgets: a running phase completes first).
    ///
    /// # Errors
    ///
    /// [`SolveError::Cancelled`] / [`SolveError::DeadlineExceeded`].
    pub fn checkpoint(&self) -> Result<(), SolveError> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(SolveError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(SolveError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_context_never_trips() {
        let cx = SolveCx::new();
        assert_eq!(cx.checkpoint(), Ok(()));
        assert!(cx.pool().is_sequential());
    }

    #[test]
    fn arming_derives_the_pool_from_the_shards_hint() {
        let mut cx = SolveCx::new();
        cx.arm(&SolveRequest::new("x").shards(4));
        assert_eq!(cx.pool().workers(), 4);
        cx.arm(&SolveRequest::new("x"));
        assert!(cx.pool().is_sequential(), "shards=0 re-arms sequential");
    }

    #[test]
    fn pool_cap_bounds_armed_threads() {
        let mut cx = SolveCx::new().with_pool_cap(1);
        cx.arm(&SolveRequest::new("x").shards(8));
        assert_eq!(cx.pool().workers(), 8, "workers follow the hint");
        assert_eq!(cx.pool().threads(), 1, "threads honor the cap");
    }

    #[test]
    fn cancellation_flag_trips_the_checkpoint() {
        let mut cx = SolveCx::new();
        let flag = Arc::new(AtomicBool::new(false));
        cx.arm(&SolveRequest::new("x").cancel_flag(flag.clone()));
        assert_eq!(cx.checkpoint(), Ok(()));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(cx.checkpoint(), Err(SolveError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips_the_checkpoint() {
        let mut cx = SolveCx::new();
        cx.arm(&SolveRequest::new("x").deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(cx.checkpoint(), Err(SolveError::DeadlineExceeded));
        // Re-arming with a roomy budget clears the trip.
        cx.arm(&SolveRequest::new("x").deadline(Duration::from_secs(3600)));
        assert_eq!(cx.checkpoint(), Ok(()));
    }
}
