//! [`SolveCx`]: per-session mutable state threaded through every solve.

use crate::error::SolveError;
use crate::request::SolveRequest;
use decss_shortcuts::ShortcutWorkspace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The mutable context a [`Solver`](crate::Solver) runs in: the reusable
/// scratch (the heavy-traffic path — repeated solves on same-size
/// instances allocate nothing after the first call) plus the armed
/// deadline/cancellation state of the current request.
#[derive(Debug, Default)]
pub struct SolveCx {
    ws: ShortcutWorkspace,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl SolveCx {
    /// A fresh context with empty scratch.
    pub fn new() -> Self {
        SolveCx::default()
    }

    /// The shared flat scratch ([`ShortcutWorkspace`]) solvers thread
    /// through the shortcut pipeline. Grows to the largest instance
    /// seen, never shrinks.
    pub fn workspace(&mut self) -> &mut ShortcutWorkspace {
        &mut self.ws
    }

    /// Arms the deadline clock and cancellation flag for one solve.
    /// Called by [`SolverSession`](crate::SolverSession) at solve entry;
    /// call it yourself when driving a [`Solver`](crate::Solver)
    /// directly and you want the request's budget honored.
    pub fn arm(&mut self, req: &SolveRequest) {
        self.deadline = req.deadline.map(|budget| Instant::now() + budget);
        self.cancel = req.cancel.clone();
    }

    /// Phase-boundary check: errors if the armed cancellation flag is
    /// set or the armed deadline has passed. Solvers call this between
    /// phases (best-effort budgets: a running phase completes first).
    ///
    /// # Errors
    ///
    /// [`SolveError::Cancelled`] / [`SolveError::DeadlineExceeded`].
    pub fn checkpoint(&self) -> Result<(), SolveError> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(SolveError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(SolveError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_context_never_trips() {
        let cx = SolveCx::new();
        assert_eq!(cx.checkpoint(), Ok(()));
    }

    #[test]
    fn cancellation_flag_trips_the_checkpoint() {
        let mut cx = SolveCx::new();
        let flag = Arc::new(AtomicBool::new(false));
        cx.arm(&SolveRequest::new("x").cancel_flag(flag.clone()));
        assert_eq!(cx.checkpoint(), Ok(()));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(cx.checkpoint(), Err(SolveError::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips_the_checkpoint() {
        let mut cx = SolveCx::new();
        cx.arm(&SolveRequest::new("x").deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(cx.checkpoint(), Err(SolveError::DeadlineExceeded));
        // Re-arming with a roomy budget clears the trip.
        cx.arm(&SolveRequest::new("x").deadline(Duration::from_secs(3600)));
        assert_eq!(cx.checkpoint(), Ok(()));
    }
}
