//! The workspace's one hand-rolled JSON dialect (the environment is
//! offline and vendors no serde): string escaping for writers plus the
//! line-oriented field scanners the readers use.
//!
//! Every JSON document the workspace emits — [`SolveReport::to_json`]
//! (and through it the CLI's `scenario` sweeps) and the `BENCH_*.json`
//! files written by `decss_bench::benchjson` — goes through [`escape`],
//! and `benchjson`'s parser is built on [`string_field`] /
//! [`number_field`], so the dialect is defined in exactly one place.
//!
//! [`SolveReport::to_json`]: crate::SolveReport::to_json

/// Escapes a string for embedding in a JSON string literal.
///
/// Only `\` and `"` need escaping for the strings the workspace emits
/// (ids, env echoes, algorithm names); control characters are the
/// caller's responsibility to avoid (the bench host header flattens
/// them).
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts the string value of `"key": "value"` from a JSON-ish line,
/// undoing [`escape`].
pub fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key": 123.4` from a JSON-ish line.
pub fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    rest.parse().ok()
}

/// Extracts the items of `"key": ["a", "b", ...]` from a JSON-ish
/// line, undoing [`escape`] per item. `Some(vec![])` for an empty
/// array; `None` when the key is absent or the array is malformed
/// (unterminated, or holding non-string items).
pub fn string_array_field(line: &str, key: &str) -> Option<Vec<String>> {
    let pat = format!("\"{key}\": [");
    let start = line.find(&pat)? + pat.len();
    let mut chars = line[start..].chars();
    let mut out = Vec::new();
    loop {
        let c = loop {
            match chars.next()? {
                c if c.is_whitespace() || c == ',' => continue,
                c => break c,
            }
        };
        match c {
            ']' => return Some(out),
            '"' => {
                let mut item = String::new();
                loop {
                    match chars.next()? {
                        '"' => break,
                        '\\' => item.push(chars.next()?),
                        ch => item.push(ch),
                    }
                }
                out.push(item);
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_string_field() {
        let s = "weird\"id\\x";
        let line = format!("{{\"id\": \"{}\"}}", escape(s));
        assert_eq!(string_field(&line, "id").as_deref(), Some(s));
    }

    #[test]
    fn number_field_reads_floats_and_ints() {
        let line = "{\"a\": 12, \"b\": -3.5e2, \"c\": \"nope\"}";
        assert_eq!(number_field(line, "a"), Some(12.0));
        assert_eq!(number_field(line, "b"), Some(-350.0));
        assert_eq!(number_field(line, "c"), None);
        assert_eq!(number_field(line, "missing"), None);
    }

    #[test]
    fn string_array_field_reads_items_and_rejects_malformed_arrays() {
        let line = "{\"deltas\": [\"rw(3,9)\", \"del(5)\"], \"empty\": [], \"n\": 4}";
        assert_eq!(
            string_array_field(line, "deltas"),
            Some(vec!["rw(3,9)".to_string(), "del(5)".to_string()])
        );
        assert_eq!(string_array_field(line, "empty"), Some(vec![]));
        assert_eq!(string_array_field(line, "missing"), None);
        assert_eq!(string_array_field("{\"a\": [\"x\"", "a"), None);
        assert_eq!(string_array_field("{\"a\": [3, 4]}", "a"), None);
    }
}
