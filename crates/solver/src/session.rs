//! [`SolverSession`]: the reusable front door — registry dispatch,
//! failure injection, validation, timing, and scratch reuse across
//! repeated solves.

use crate::context::SolveCx;
use crate::error::SolveError;
use crate::registry::Registry;
use crate::report::SolveReport;
use crate::request::SolveRequest;
use decss_graphs::{algo, EdgeId, Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A reusable solving session: owns the [`Registry`] and the shared
/// scratch ([`SolveCx`], including the `ShortcutWorkspace`), so repeated
/// solves — scenario sweeps, services under heavy traffic — stop
/// re-allocating per call. One session serves any mix of algorithms and
/// instance sizes; scratch grows to the largest instance seen and is
/// epoch-stamped, so reuse is bit-identical to fresh allocation (pinned
/// by the parity suite's dirty-session tests).
#[derive(Default)]
pub struct SolverSession {
    registry: Registry,
    cx: SolveCx,
}

impl SolverSession {
    /// A session over the [standard registry](Registry::standard).
    pub fn new() -> Self {
        SolverSession::default()
    }

    /// A session over a custom registry.
    pub fn with_registry(registry: Registry) -> Self {
        SolverSession { registry, cx: SolveCx::new() }
    }

    /// The session's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The session's context (to pre-grow scratch or drive a
    /// [`Solver`](crate::Solver) by hand).
    pub fn context(&mut self) -> &mut SolveCx {
        &mut self.cx
    }

    /// Solves `g` per `req`: resolves the algorithm in the registry,
    /// applies the request's failure injection, runs the solver with the
    /// session scratch, and stamps the report with the instance echo,
    /// validation verdict, and wall-clock time.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownAlgorithm`] for unregistered names,
    /// [`SolveError::BadRequest`]/[`SolveError::BadEpsilon`] for
    /// out-of-domain knobs, and whatever the solver itself returns.
    pub fn solve(&mut self, g: &Graph, req: &SolveRequest) -> Result<SolveReport, SolveError> {
        if req.bandwidth == 0 {
            return Err(SolveError::BadRequest("bandwidth must be >= 1".into()));
        }
        if !(req.epsilon.is_finite() && req.epsilon > 0.0) {
            return Err(SolveError::BadEpsilon);
        }
        let solver =
            self.registry
                .get(&req.algorithm)
                .ok_or_else(|| SolveError::UnknownAlgorithm {
                    name: req.algorithm.clone(),
                    known: self.registry.known(),
                })?;
        self.cx.arm(req);
        self.cx.checkpoint()?;

        let (damaged, failed_edges);
        let instance: &Graph = if req.fail_edges > 0 {
            (damaged, failed_edges) = inject_failures(g, req.fail_edges, req.seed.unwrap_or(0));
            &damaged
        } else {
            failed_edges = Vec::new();
            g
        };

        // Timed from here so `wall_ms` means the solve itself: rows with
        // and without failure injection stay comparable in sweeps.
        let started = Instant::now();
        let mut report = solver.solve(instance, req, &mut self.cx)?;
        report.valid = algo::two_edge_connected_in(instance, report.edges.iter().copied());
        if !failed_edges.is_empty() {
            // The damaged graph renumbers edges densely; translate the
            // chosen set back into the caller's id space (surviving
            // original ids, in order) so reports round-trip against the
            // input graph (`decss verify --edges ...`). Same edge set,
            // same weight, same validity — only the labels change.
            let mut surviving = Vec::with_capacity(instance.m());
            let mut removed = failed_edges.iter().peekable();
            for e in g.edge_ids() {
                if removed.peek() == Some(&&e) {
                    removed.next();
                } else {
                    surviving.push(e);
                }
            }
            for e in &mut report.edges {
                *e = surviving[e.index()];
            }
        }
        // Echo the *effective* pool (post core-cap clamping) next to the
        // requested knobs, so a report shows what actually ran.
        report.params = format!("{} pool={}", req.params_echo(), self.cx.pool());
        report.n = instance.n();
        report.m = instance.m();
        report.bandwidth = req.bandwidth;
        report.failed_edges = failed_edges;
        report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(report)
    }
}

/// Seeded edge-failure injection: removes up to `k` edges of `g`, chosen
/// in seeded-random order, skipping any whose loss would break
/// 2-edge-connectivity (the drill models a network degrading while it
/// still *has* a 2-ECSS — an infeasible instance would make every run a
/// trivial error). Returns the damaged graph and the removed edges as
/// ids of the **original** graph; the damaged graph re-numbers its edges
/// densely.
///
/// Fewer than `k` edges fall when the graph runs out of removable ones
/// (e.g. once it is Hamiltonian-cycle-thin). On a graph that is not
/// 2-edge-connected to begin with, nothing is removable and the graph
/// comes back unchanged.
pub fn inject_failures(g: &Graph, k: u32, seed: u64) -> (Graph, Vec<EdgeId>) {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates with the vendored rng (no shuffle helper there).
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    let mut alive = vec![true; g.m()];
    let mut removed: Vec<EdgeId> = Vec::new();
    for &e in &order {
        if removed.len() as u32 == k {
            break;
        }
        alive[e.index()] = false;
        if algo::two_edge_connected_in(g, g.edge_ids().filter(|&x| alive[x.index()])) {
            removed.push(e);
        } else {
            alive[e.index()] = true;
        }
    }
    removed.sort_unstable();

    let mut b = GraphBuilder::new(g.n());
    for (id, edge) in g.edges() {
        if alive[id.index()] {
            b.add_edge(edge.u.0, edge.v.0, edge.weight)
                .expect("endpoints are in range");
        }
    }
    (b.build().expect("graph is non-empty"), removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decss_graphs::gen;

    #[test]
    fn unknown_algorithm_lists_the_registry() {
        let g = gen::cycle(5, 9, 0);
        let mut session = SolverSession::new();
        match session.solve(&g, &SolveRequest::new("mystery")) {
            Err(SolveError::UnknownAlgorithm { name, known }) => {
                assert_eq!(name, "mystery");
                assert!(known.contains("shortcut"), "{known}");
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn bad_knobs_are_rejected_before_dispatch() {
        let g = gen::cycle(5, 9, 0);
        let mut session = SolverSession::new();
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("improved").bandwidth(0)),
            Err(SolveError::BadRequest(_))
        ));
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("improved").epsilon(0.0)),
            Err(SolveError::BadEpsilon)
        ));
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("shortcut").epsilon(f64::NAN)),
            Err(SolveError::BadEpsilon)
        ));
    }

    #[test]
    fn session_solves_and_stamps_the_report() {
        let g = gen::grid(6, 6, 20, 7);
        let mut session = SolverSession::new();
        let report = session.solve(&g, &SolveRequest::new("improved")).unwrap();
        assert_eq!(report.algorithm, "improved");
        assert_eq!((report.n, report.m), (g.n(), g.m()));
        assert!(report.valid);
        assert!(report.certified_ratio() >= 1.0 - 1e-9);
        assert!(report.rounds.unwrap() > 0);
        assert!(report.wall_ms >= 0.0);
        assert!(report.params.contains("epsilon=0.25"));
        assert!(report.params.contains("pool=1w/1t"), "{}", report.params);
    }

    #[test]
    fn shards_hint_changes_no_result_and_is_echoed() {
        let g = gen::grid(8, 8, 20, 7);
        let mut seq_session = SolverSession::new();
        let mut pooled_session = SolverSession::new();
        let seq = seq_session.solve(&g, &SolveRequest::new("shortcut").seed(3)).unwrap();
        let pooled = pooled_session
            .solve(&g, &SolveRequest::new("shortcut").seed(3).shards(4))
            .unwrap();
        assert_eq!(seq.edges, pooled.edges);
        assert_eq!(seq.weight, pooled.weight);
        assert_eq!(seq.level_quality, pooled.level_quality);
        assert!(pooled.params.contains("shards=4"), "{}", pooled.params);
        assert!(pooled.params.contains("pool=4w/"), "{}", pooled.params);
    }

    #[test]
    fn failure_injection_removes_edges_and_stays_solvable() {
        let g = gen::grid(6, 6, 20, 7);
        let (damaged, removed) = inject_failures(&g, 4, 11);
        assert_eq!(removed.len(), 4);
        assert_eq!(damaged.m(), g.m() - 4);
        assert_eq!(damaged.n(), g.n());
        assert!(algo::is_two_edge_connected(&damaged));
        // Deterministic per seed; different seeds explore different edges.
        let (_, removed_again) = inject_failures(&g, 4, 11);
        assert_eq!(removed, removed_again);

        let mut session = SolverSession::new();
        let report = session
            .solve(&g, &SolveRequest::new("shortcut").fail_edges(4).seed(11))
            .unwrap();
        assert_eq!(report.failed_edges, removed);
        assert_eq!(report.m, g.m() - 4);
        assert!(report.valid);
        // The chosen edges come back in the *original* graph's id space:
        // none of them is a failed edge, and the set round-trips as a
        // 2-ECSS of the original graph directly.
        assert!(report.edges.iter().all(|e| !removed.contains(e)));
        assert!(algo::two_edge_connected_in(&g, report.edges.iter().copied()));
    }

    #[test]
    fn every_solver_reports_infeasible_inputs_cleanly() {
        // Not 2-edge-connected (a path) and outright disconnected: the
        // trait contract promises NotTwoEdgeConnected, never a panic.
        let path = gen::path(5);
        let disconnected = {
            let mut b = decss_graphs::GraphBuilder::new(4);
            b.add_edge(0, 1, 1).unwrap();
            b.add_edge(2, 3, 1).unwrap();
            b.build().unwrap()
        };
        let mut session = SolverSession::new();
        let names: Vec<&str> = session.registry().names().collect();
        for name in names {
            for g in [&path, &disconnected] {
                assert!(
                    matches!(
                        session.solve(g, &SolveRequest::new(name)),
                        Err(SolveError::NotTwoEdgeConnected)
                    ),
                    "{name} must reject infeasible inputs with NotTwoEdgeConnected"
                );
            }
        }
    }

    #[test]
    fn failure_injection_never_breaks_a_thin_cycle() {
        // A bare cycle has no removable edge at all.
        let g = gen::cycle(8, 5, 1);
        let (damaged, removed) = inject_failures(&g, 3, 0);
        assert!(removed.is_empty());
        assert_eq!(damaged.m(), g.m());
        assert!(algo::is_two_edge_connected(&damaged));
    }
}
