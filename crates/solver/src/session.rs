//! [`SolverSession`]: the reusable front door — registry dispatch,
//! failure injection, validation, timing, and scratch reuse across
//! repeated solves.

use crate::context::SolveCx;
use crate::error::SolveError;
use crate::registry::Registry;
use crate::report::SolveReport;
use crate::request::SolveRequest;
use crate::solvers::{shortcut_config, shortcut_report};
use decss_graphs::fingerprint::graph_fingerprint;
use decss_graphs::{algo, EdgeId, Graph};
use decss_shortcuts::dynamic::{mutate, DeltaError, DynamicInstance, GraphDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// How many [`DynamicInstance`]s a session retains before evicting the
/// lot — each holds a full graph plus decomposition, so the cache is
/// deliberately small; a delta stream touches one or two entries.
const DYNAMIC_CACHE_CAP: usize = 32;

/// A reusable solving session: owns the [`Registry`] and the shared
/// scratch ([`SolveCx`], including the `ShortcutWorkspace`), so repeated
/// solves — scenario sweeps, services under heavy traffic — stop
/// re-allocating per call. One session serves any mix of algorithms and
/// instance sizes; scratch grows to the largest instance seen and is
/// epoch-stamped, so reuse is bit-identical to fresh allocation (pinned
/// by the parity suite's dirty-session tests).
///
/// Delta-stream requests ([`SolveRequest::deltas`]) against the
/// `shortcut` algorithm additionally keep a [`DynamicInstance`] per
/// graph fingerprint, so a stream of mutations re-solves incrementally
/// instead of from scratch; see
/// [`decss_shortcuts::dynamic`] for the engine and its byte-identical
/// guarantee.
#[derive(Default)]
pub struct SolverSession {
    registry: Registry,
    cx: SolveCx,
    /// Retained incremental pipeline state, keyed by the fingerprint of
    /// each instance's *current* (post-mutation) graph.
    dynamic: HashMap<u64, DynamicInstance>,
}

impl SolverSession {
    /// A session over the [standard registry](Registry::standard).
    pub fn new() -> Self {
        SolverSession::default()
    }

    /// A session over a custom registry.
    pub fn with_registry(registry: Registry) -> Self {
        SolverSession { registry, cx: SolveCx::new(), dynamic: HashMap::new() }
    }

    /// The session's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The session's context (to pre-grow scratch or drive a
    /// [`Solver`](crate::Solver) by hand).
    pub fn context(&mut self) -> &mut SolveCx {
        &mut self.cx
    }

    /// Solves `g` per `req`: resolves the algorithm in the registry,
    /// applies the request's failure injection, runs the solver with the
    /// session scratch, and stamps the report with the instance echo,
    /// validation verdict, and wall-clock time.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownAlgorithm`] for unregistered names,
    /// [`SolveError::BadRequest`]/[`SolveError::BadEpsilon`] for
    /// out-of-domain knobs, and whatever the solver itself returns.
    pub fn solve(&mut self, g: &Graph, req: &SolveRequest) -> Result<SolveReport, SolveError> {
        if req.bandwidth == 0 {
            return Err(SolveError::BadRequest("bandwidth must be >= 1".into()));
        }
        if !(req.epsilon.is_finite() && req.epsilon > 0.0) {
            return Err(SolveError::BadEpsilon);
        }
        if !req.deltas.is_empty() && req.fail_edges > 0 {
            // Both rewrite the edge-id space; the combination would make
            // the report's ids ambiguous.
            return Err(SolveError::BadRequest(
                "deltas cannot be combined with fail_edges".into(),
            ));
        }
        if !req.deltas.is_empty() && req.algorithm == "shortcut" {
            return self.solve_deltas_incremental(g, req);
        }
        let solver =
            self.registry
                .get(&req.algorithm)
                .ok_or_else(|| SolveError::UnknownAlgorithm {
                    name: req.algorithm.clone(),
                    known: self.registry.known(),
                })?;
        self.cx.arm(req);
        self.cx.checkpoint()?;

        // Non-shortcut algorithms take deltas too — applied up front,
        // solved from scratch (no retained state to be incremental
        // against). The report's ids live in the mutated id space.
        let mutated;
        let base: &Graph = if req.deltas.is_empty() {
            g
        } else {
            mutated = mutate(g, &req.deltas).map_err(delta_error)?;
            &mutated
        };

        let (damaged, failed_edges);
        let instance: &Graph = if req.fail_edges > 0 {
            let (injected, removed) = inject_failures(base, req.fail_edges, req.seed.unwrap_or(0));
            failed_edges = removed;
            match injected {
                Some(d) => {
                    damaged = d;
                    &damaged
                }
                // Nothing was removable: solve the caller's graph as-is,
                // without having cloned it.
                None => base,
            }
        } else {
            failed_edges = Vec::new();
            base
        };

        // Timed from here so `wall_ms` means the solve itself: rows with
        // and without failure injection stay comparable in sweeps.
        let started = Instant::now();
        let mut report = solver.solve(instance, req, &mut self.cx)?;
        report.valid = algo::two_edge_connected_in(instance, report.edges.iter().copied());
        if !failed_edges.is_empty() {
            // The damaged graph renumbers edges densely; translate the
            // chosen set back into the caller's id space (surviving
            // original ids, in order) so reports round-trip against the
            // input graph (`decss verify --edges ...`). Same edge set,
            // same weight, same validity — only the labels change.
            let mut surviving = Vec::with_capacity(instance.m());
            let mut removed = failed_edges.iter().peekable();
            for e in g.edge_ids() {
                if removed.peek() == Some(&&e) {
                    removed.next();
                } else {
                    surviving.push(e);
                }
            }
            for e in &mut report.edges {
                *e = surviving[e.index()];
            }
        }
        // Echo the *effective* pool (post core-cap clamping) next to the
        // requested knobs, so a report shows what actually ran.
        report.params = format!("{} pool={}", req.params_echo(), self.cx.pool());
        report.n = instance.n();
        report.m = instance.m();
        report.bandwidth = req.bandwidth;
        report.failed_edges = failed_edges;
        if !req.deltas.is_empty() {
            report.fingerprint = Some(graph_fingerprint(instance));
        }
        report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(report)
    }

    /// The delta-stream fast path: look up (or build) the
    /// [`DynamicInstance`] for the request's base graph, apply the
    /// batch incrementally, and assemble the exact report the
    /// `shortcut` solver would have produced on the mutated graph.
    fn solve_deltas_incremental(
        &mut self,
        g: &Graph,
        req: &SolveRequest,
    ) -> Result<SolveReport, SolveError> {
        self.cx.arm(req);
        self.cx.checkpoint()?;
        let config = shortcut_config(req);
        // Timed from here so a cold solve honestly includes the one-off
        // decomposition build, like a fresh pipeline run would.
        let started = Instant::now();
        let fp0 = graph_fingerprint(g);
        let mut inst = match self.dynamic.remove(&fp0) {
            Some(inst) => inst,
            None => DynamicInstance::new(g.clone()),
        };
        // Park the base state back under its own key: a clone is O(n+m),
        // so other delta batches against the same base stay incremental
        // instead of paying a full rebuild each.
        self.park(fp0, inst.clone());
        match inst.apply(&req.deltas, &config) {
            Ok((res, stats)) => {
                let mut report = shortcut_report(res, req);
                report.valid =
                    algo::two_edge_connected_in(inst.graph(), report.edges.iter().copied());
                report.params = format!("{} pool={}", req.params_echo(), self.cx.pool());
                report.n = inst.graph().n();
                report.m = inst.graph().m();
                report.bandwidth = req.bandwidth;
                report.incremental = Some(stats);
                report.fingerprint = Some(inst.fingerprint());
                report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
                self.park(inst.fingerprint(), inst);
                Ok(report)
            }
            Err(err @ DeltaError::Invalid { .. }) => Err(delta_error(err)),
            Err(DeltaError::NotTwoEdgeConnected) => {
                // The mutation committed: keep the instance around so a
                // later repairing batch can chain off it.
                self.park(inst.fingerprint(), inst);
                Err(SolveError::NotTwoEdgeConnected)
            }
        }
    }

    fn park(&mut self, fp: u64, inst: DynamicInstance) {
        if self.dynamic.len() >= DYNAMIC_CACHE_CAP && !self.dynamic.contains_key(&fp) {
            self.dynamic.clear();
        }
        self.dynamic.insert(fp, inst);
    }
}

fn delta_error(err: DeltaError) -> SolveError {
    match err {
        DeltaError::Invalid { .. } => SolveError::BadRequest(err.to_string()),
        DeltaError::NotTwoEdgeConnected => SolveError::NotTwoEdgeConnected,
    }
}

/// Seeded edge-failure injection: removes up to `k` edges of `g`, chosen
/// in seeded-random order, skipping any whose loss would break
/// 2-edge-connectivity (the drill models a network degrading while it
/// still *has* a 2-ECSS — an infeasible instance would make every run a
/// trivial error). Returns the damaged graph and the removed edges as
/// ids of the **original** graph; the damaged graph re-numbers its edges
/// densely (it is the delete-only case of [`mutate`]'s id compaction).
///
/// Fewer than `k` edges fall when the graph runs out of removable ones
/// (e.g. once it is Hamiltonian-cycle-thin). When *nothing* is removable
/// — a bare cycle, or a bridge-heavy graph that is not 2-edge-connected
/// to begin with — the damaged graph is `None` and the caller keeps
/// borrowing the original, without a clone having been built.
pub fn inject_failures(g: &Graph, k: u32, seed: u64) -> (Option<Graph>, Vec<EdgeId>) {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates with the vendored rng (no shuffle helper there).
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    let mut alive = vec![true; g.m()];
    let mut removed: Vec<EdgeId> = Vec::new();
    for &e in &order {
        if removed.len() as u32 == k {
            break;
        }
        alive[e.index()] = false;
        if algo::two_edge_connected_in(g, g.edge_ids().filter(|&x| alive[x.index()])) {
            removed.push(e);
        } else {
            alive[e.index()] = true;
        }
    }
    if removed.is_empty() {
        return (None, removed);
    }
    removed.sort_unstable();

    // The damaged graph is exactly the delta machinery's delete batch:
    // survivors keep their relative order, ids compact densely.
    let deltas: Vec<GraphDelta> = removed.iter().map(|&edge| GraphDelta::Delete { edge }).collect();
    let damaged = mutate(g, &deltas).expect("removed ids come from g");
    (Some(damaged), removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decss_graphs::gen;

    #[test]
    fn unknown_algorithm_lists_the_registry() {
        let g = gen::cycle(5, 9, 0);
        let mut session = SolverSession::new();
        match session.solve(&g, &SolveRequest::new("mystery")) {
            Err(SolveError::UnknownAlgorithm { name, known }) => {
                assert_eq!(name, "mystery");
                assert!(known.contains("shortcut"), "{known}");
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn bad_knobs_are_rejected_before_dispatch() {
        let g = gen::cycle(5, 9, 0);
        let mut session = SolverSession::new();
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("improved").bandwidth(0)),
            Err(SolveError::BadRequest(_))
        ));
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("improved").epsilon(0.0)),
            Err(SolveError::BadEpsilon)
        ));
        assert!(matches!(
            session.solve(&g, &SolveRequest::new("shortcut").epsilon(f64::NAN)),
            Err(SolveError::BadEpsilon)
        ));
    }

    #[test]
    fn session_solves_and_stamps_the_report() {
        let g = gen::grid(6, 6, 20, 7);
        let mut session = SolverSession::new();
        let report = session.solve(&g, &SolveRequest::new("improved")).unwrap();
        assert_eq!(report.algorithm, "improved");
        assert_eq!((report.n, report.m), (g.n(), g.m()));
        assert!(report.valid);
        assert!(report.certified_ratio() >= 1.0 - 1e-9);
        assert!(report.rounds.unwrap() > 0);
        assert!(report.wall_ms >= 0.0);
        assert!(report.params.contains("epsilon=0.25"));
        assert!(report.params.contains("pool=1w/1t"), "{}", report.params);
    }

    #[test]
    fn shards_hint_changes_no_result_and_is_echoed() {
        let g = gen::grid(8, 8, 20, 7);
        let mut seq_session = SolverSession::new();
        let mut pooled_session = SolverSession::new();
        let seq = seq_session.solve(&g, &SolveRequest::new("shortcut").seed(3)).unwrap();
        let pooled = pooled_session
            .solve(&g, &SolveRequest::new("shortcut").seed(3).shards(4))
            .unwrap();
        assert_eq!(seq.edges, pooled.edges);
        assert_eq!(seq.weight, pooled.weight);
        assert_eq!(seq.level_quality, pooled.level_quality);
        assert!(pooled.params.contains("shards=4"), "{}", pooled.params);
        assert!(pooled.params.contains("pool=4w/"), "{}", pooled.params);
    }

    #[test]
    fn failure_injection_removes_edges_and_stays_solvable() {
        let g = gen::grid(6, 6, 20, 7);
        let (damaged, removed) = inject_failures(&g, 4, 11);
        let damaged = damaged.expect("a grid has removable edges");
        assert_eq!(removed.len(), 4);
        assert_eq!(damaged.m(), g.m() - 4);
        assert_eq!(damaged.n(), g.n());
        assert!(algo::is_two_edge_connected(&damaged));
        // Deterministic per seed; different seeds explore different edges.
        let (_, removed_again) = inject_failures(&g, 4, 11);
        assert_eq!(removed, removed_again);

        let mut session = SolverSession::new();
        let report = session
            .solve(&g, &SolveRequest::new("shortcut").fail_edges(4).seed(11))
            .unwrap();
        assert_eq!(report.failed_edges, removed);
        assert_eq!(report.m, g.m() - 4);
        assert!(report.valid);
        // The chosen edges come back in the *original* graph's id space:
        // none of them is a failed edge, and the set round-trips as a
        // 2-ECSS of the original graph directly.
        assert!(report.edges.iter().all(|e| !removed.contains(e)));
        assert!(algo::two_edge_connected_in(&g, report.edges.iter().copied()));
    }

    #[test]
    fn every_solver_reports_infeasible_inputs_cleanly() {
        // Not 2-edge-connected (a path) and outright disconnected: the
        // trait contract promises NotTwoEdgeConnected, never a panic.
        let path = gen::path(5);
        let disconnected = {
            let mut b = decss_graphs::GraphBuilder::new(4);
            b.add_edge(0, 1, 1).unwrap();
            b.add_edge(2, 3, 1).unwrap();
            b.build().unwrap()
        };
        let mut session = SolverSession::new();
        let names: Vec<&str> = session.registry().names().collect();
        for name in names {
            for g in [&path, &disconnected] {
                assert!(
                    matches!(
                        session.solve(g, &SolveRequest::new(name)),
                        Err(SolveError::NotTwoEdgeConnected)
                    ),
                    "{name} must reject infeasible inputs with NotTwoEdgeConnected"
                );
            }
        }
    }

    #[test]
    fn failure_injection_never_breaks_a_thin_cycle() {
        // A bare cycle has no removable edge at all: the short-circuit
        // returns no damaged clone and the caller borrows the original.
        let g = gen::cycle(8, 5, 1);
        let (damaged, removed) = inject_failures(&g, 3, 0);
        assert!(removed.is_empty());
        assert!(damaged.is_none());
        // The session path still solves the intact cycle.
        let mut session = SolverSession::new();
        let report = session
            .solve(&g, &SolveRequest::new("shortcut").fail_edges(3))
            .unwrap();
        assert!(report.valid);
        assert_eq!(report.m, g.m());
        assert!(report.failed_edges.is_empty());
    }

    #[test]
    fn failure_injection_short_circuits_on_bridge_heavy_graphs() {
        // A caterpillar of bridges hanging off one small cycle: every
        // non-cycle edge is a bridge, the graph is not 2EC, so *no* edge
        // is removable (removing a cycle edge adds bridges, removing a
        // bridge disconnects). Nothing should be cloned.
        let mut b = decss_graphs::GraphBuilder::new(8);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 0, 1).unwrap();
        for (u, v) in [(2, 3), (3, 4), (4, 5), (5, 6), (6, 7)] {
            b.add_edge(u, v, 1).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!algo::is_two_edge_connected(&g));
        let (damaged, removed) = inject_failures(&g, 5, 7);
        assert!(damaged.is_none());
        assert!(removed.is_empty());
    }

    #[test]
    fn delta_requests_are_incompatible_with_fail_edges() {
        let g = gen::grid(5, 5, 16, 2);
        let mut session = SolverSession::new();
        let req = SolveRequest::new("shortcut")
            .fail_edges(2)
            .deltas(vec![GraphDelta::Delete { edge: EdgeId(0) }]);
        assert!(matches!(session.solve(&g, &req), Err(SolveError::BadRequest(_))));
    }

    #[test]
    fn delta_solve_matches_a_fresh_solve_of_the_mutated_graph() {
        let g = gen::grid(8, 8, 24, 7);
        let tree = decss_tree::RootedTree::mst(&g);
        let non_tree = g.edge_ids().find(|&e| !tree.is_tree_edge(e)).unwrap();
        let deltas = vec![GraphDelta::Reweight { edge: non_tree, weight: 999 }];
        let mutated = mutate(&g, &deltas).unwrap();

        let mut session = SolverSession::new();
        let inc = session
            .solve(&g, &SolveRequest::new("shortcut").seed(5).deltas(deltas))
            .unwrap();
        let mut fresh_session = SolverSession::new();
        let fresh = fresh_session
            .solve(&mutated, &SolveRequest::new("shortcut").seed(5))
            .unwrap();
        assert_eq!(inc.edges, fresh.edges);
        assert_eq!(inc.weight, fresh.weight);
        assert_eq!(inc.level_quality, fresh.level_quality);
        assert_eq!(inc.rounds, fresh.rounds);
        assert!(inc.valid);
        let stats = inc.incremental.expect("delta solves carry the block");
        assert!(!stats.fell_back, "{stats:?}");
        assert_eq!(inc.fingerprint, Some(graph_fingerprint(&mutated)));
        assert!(inc.params.contains("deltas=[rw("), "{}", inc.params);
    }

    #[test]
    fn delta_solves_chain_across_requests() {
        // Batch 2 starts from batch 1's mutated graph: the session finds
        // the retained instance under the chained fingerprint and both
        // solves stay identical to fresh runs.
        let g = gen::grid(7, 7, 24, 3);
        let tree = decss_tree::RootedTree::mst(&g);
        let nt: Vec<EdgeId> = g.edge_ids().filter(|&e| !tree.is_tree_edge(e)).collect();
        let d1 = vec![GraphDelta::Reweight { edge: nt[0], weight: 500 }];
        let d2 = vec![GraphDelta::Reweight { edge: nt[1], weight: 700 }];
        let g1 = mutate(&g, &d1).unwrap();
        let g2 = mutate(&g1, &d2).unwrap();

        let mut session = SolverSession::new();
        let r1 = session.solve(&g, &SolveRequest::new("shortcut").deltas(d1)).unwrap();
        assert_eq!(r1.fingerprint, Some(graph_fingerprint(&g1)));
        let r2 = session.solve(&g1, &SolveRequest::new("shortcut").deltas(d2)).unwrap();
        assert_eq!(r2.fingerprint, Some(graph_fingerprint(&g2)));
        let fresh = SolverSession::new()
            .solve(&g2, &SolveRequest::new("shortcut"))
            .unwrap();
        assert_eq!(r2.edges, fresh.edges);
        assert_eq!(r2.weight, fresh.weight);
        // And the base instance was parked: re-solving from the original
        // graph with a different batch still matches fresh.
        let d3 = vec![GraphDelta::Delete { edge: nt[2] }];
        let g3 = mutate(&g, &d3).unwrap();
        if algo::is_two_edge_connected(&g3) {
            let r3 = session.solve(&g, &SolveRequest::new("shortcut").deltas(d3)).unwrap();
            let fresh3 = SolverSession::new()
                .solve(&g3, &SolveRequest::new("shortcut"))
                .unwrap();
            assert_eq!(r3.edges, fresh3.edges);
        }
    }

    #[test]
    fn non_shortcut_algorithms_accept_deltas_without_the_block() {
        let g = gen::grid(6, 6, 20, 7);
        let tree = decss_tree::RootedTree::mst(&g);
        let non_tree = g.edge_ids().find(|&e| !tree.is_tree_edge(e)).unwrap();
        let deltas = vec![GraphDelta::Reweight { edge: non_tree, weight: 321 }];
        let mutated = mutate(&g, &deltas).unwrap();
        let mut session = SolverSession::new();
        let report = session
            .solve(&g, &SolveRequest::new("greedy").deltas(deltas))
            .unwrap();
        let fresh = SolverSession::new()
            .solve(&mutated, &SolveRequest::new("greedy"))
            .unwrap();
        assert_eq!(report.edges, fresh.edges);
        assert_eq!(report.weight, fresh.weight);
        assert!(report.incremental.is_none());
        assert_eq!(report.fingerprint, Some(graph_fingerprint(&mutated)));
    }

    #[test]
    fn invalid_deltas_surface_as_bad_requests() {
        let g = gen::grid(4, 4, 10, 1);
        let mut session = SolverSession::new();
        let req =
            SolveRequest::new("shortcut").deltas(vec![GraphDelta::Delete { edge: EdgeId(10_000) }]);
        match session.solve(&g, &req) {
            Err(SolveError::BadRequest(msg)) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
}
