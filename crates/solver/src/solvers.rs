//! The built-in solvers: every pipeline in the workspace behind the one
//! [`Solver`] trait.

use crate::context::SolveCx;
use crate::error::SolveError;
use crate::registry::{Solver, SolverFactory};
use crate::report::SolveReport;
use crate::request::{SolveRequest, TraceLevel};
use decss_baselines::{cheapest_cover_tap, exact_two_ecss, greedy_tap};
use decss_congest::ledger::RoundLedger;
use decss_core::{approximate_two_ecss, TapConfig, TwoEcssConfig, Variant};
use decss_graphs::{algo, EdgeId, Graph, Weight};
use decss_shortcuts::{shortcut_two_ecss_pool, ShortcutConfig, ShortcutResult};
use decss_tree::RootedTree;

/// Factories for every built-in solver, in the registration order of
/// [`Registry::standard`](crate::Registry::standard).
pub const STANDARD: &[SolverFactory] = &[
    || Box::new(TapSolver { name: "improved", variant: Variant::Improved }),
    || Box::new(TapSolver { name: "basic", variant: Variant::Basic }),
    || Box::new(ShortcutSolver),
    || Box::new(GreedySolver),
    || Box::new(UnweightedSolver),
    || Box::new(ExactSolver),
    || Box::new(CheapestCoverSolver),
];

fn ledger_trace(trace: &mut Vec<String>, level: TraceLevel, ledger: &RoundLedger) {
    if level >= TraceLevel::Full {
        for (op, inv, rounds) in ledger.breakdown() {
            trace.push(format!("rounds {op} x{inv} = {rounds}"));
        }
    }
}

/// MST + tree edges → the sorted union used by every MST-plus-augmentation
/// pipeline (identical composition across solvers, pinned by the parity
/// suite).
fn compose_mst_plus(
    g: &Graph,
    tree: &RootedTree,
    augmentation: &[EdgeId],
) -> (Vec<EdgeId>, Weight) {
    let mut edges: Vec<EdgeId> = g.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect();
    let mst_weight = g.weight_of(edges.iter().copied());
    edges.extend(augmentation.iter().copied());
    edges.sort_unstable();
    (edges, mst_weight)
}

/// Theorem 1.1: the deterministic primal-dual TAP pipeline (`improved`
/// `(5+ε)` / `basic` `(9+ε)` 2-ECSS).
struct TapSolver {
    name: &'static str,
    variant: Variant,
}

impl Solver for TapSolver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        match self.variant {
            Variant::Improved => {
                "deterministic (5+e)-approximation, O((D+sqrt(n)) log^2 n / e) rounds (Theorem 1.1)"
            }
            Variant::Basic => {
                "the Section 3.5 (9+e) variant of Theorem 1.1 (<=4-cover reverse-delete)"
            }
        }
    }

    fn solve(
        &self,
        g: &Graph,
        req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        cx.checkpoint()?;
        let variant = req.variant.unwrap_or(self.variant);
        let config = TwoEcssConfig { tap: TapConfig { epsilon: req.epsilon, variant } };
        let res = approximate_two_ecss(g, &config)?;
        cx.checkpoint()?;
        let mut trace = Vec::new();
        if req.trace >= TraceLevel::Summary {
            let s = res.stats;
            trace.push(format!(
                "layers={} segments={} max-segment-diameter={} virtual-edges={}",
                s.num_layers, s.num_segments, s.max_segment_diameter, s.virtual_edges
            ));
            trace.push(format!(
                "forward-iterations={} anchors={} cleaned={} max-r-cover={}",
                s.forward_iterations, s.anchors, s.cleaned, s.max_r_cover
            ));
        }
        ledger_trace(&mut trace, req.trace, &res.ledger);
        Ok(SolveReport {
            algorithm: self.name.into(),
            label: self.name.into(),
            edges: res.edges.clone(),
            weight: res.total_weight(),
            mst_weight: Some(res.mst_weight),
            augmentation_weight: Some(res.augmentation_weight),
            lower_bound: res.lower_bound,
            guarantee: Some(config.tap.two_ecss_guarantee()),
            rounds: Some(res.ledger.total_rounds()),
            tap_stats: Some(res.stats),
            trace,
            ..SolveReport::default()
        })
    }
}

/// Theorem 1.2: the randomized `O(log n)`-approximation over
/// low-congestion shortcuts, `Õ(SC(G) + D)` rounds.
struct ShortcutSolver;

impl Solver for ShortcutSolver {
    fn name(&self) -> &'static str {
        "shortcut"
    }

    fn description(&self) -> &'static str {
        "randomized O(log n)-approximation in O~(SC(G)+D) rounds over low-congestion shortcuts (Theorem 1.2)"
    }

    fn solve(
        &self,
        g: &Graph,
        req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        cx.checkpoint()?;
        let config = shortcut_config(req);
        // The armed pool mirrors the request's `shards` hint; the pooled
        // pipeline is bit-identical to the sequential one at any size.
        let (pool, arena) = cx.pool_scratch();
        let res = shortcut_two_ecss_pool(g, &config, pool, arena)?;
        cx.checkpoint()?;
        Ok(shortcut_report(res, req))
    }
}

/// The request knobs folded into the shortcut pipeline's config — the
/// one mapping, shared with the session's incremental delta path.
pub(crate) fn shortcut_config(req: &SolveRequest) -> ShortcutConfig {
    let mut config = ShortcutConfig::default();
    config.setcover.epsilon = req.epsilon;
    if let Some(seed) = req.seed {
        config.setcover.seed = seed;
    }
    config
}

/// [`ShortcutResult`] → [`SolveReport`] assembly (label, trace, field
/// mapping), shared by [`ShortcutSolver`] and the session's incremental
/// delta path so both produce the identical report for the same result.
pub(crate) fn shortcut_report(res: ShortcutResult, req: &SolveRequest) -> SolveReport {
    let mut trace = Vec::new();
    if req.trace >= TraceLevel::Summary {
        trace.push(format!(
            "levels={} measured-sc={} pass-cost={} repetitions={} fallbacks={}",
            res.level_quality.len(),
            res.measured_sc,
            res.pass_cost,
            res.repetitions,
            res.fallbacks
        ));
        for (d, q) in res.level_quality.iter().enumerate() {
            trace.push(format!(
                "level {d}: alpha={} beta={} scheme={:?}",
                q.alpha, q.beta, q.scheme
            ));
        }
    }
    ledger_trace(&mut trace, req.trace, &res.ledger);
    SolveReport {
        algorithm: "shortcut".into(),
        label: "shortcut (Theorem 1.2)".into(),
        edges: res.edges.clone(),
        weight: res.total_weight(),
        mst_weight: Some(res.mst_weight),
        augmentation_weight: Some(res.augmentation_weight),
        lower_bound: res.lower_bound(),
        rounds: Some(res.ledger.total_rounds()),
        measured_sc: Some(res.measured_sc),
        level_quality: res.level_quality,
        pass_cost: Some(res.pass_cost),
        fallbacks: Some(res.fallbacks),
        trace,
        ..SolveReport::default()
    }
}

/// The centralized greedy set-cover TAP baseline (`O(log n)` quality,
/// no round model).
struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn description(&self) -> &'static str {
        "centralized greedy set-cover baseline, O(log n)-approximate augmentation (no round model)"
    }

    fn solve(
        &self,
        g: &Graph,
        req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        cx.checkpoint()?;
        if !algo::is_two_edge_connected(g) {
            return Err(SolveError::NotTwoEdgeConnected);
        }
        let tree = RootedTree::mst(g);
        cx.checkpoint()?;
        let (aug, aug_weight) = greedy_tap(g, &tree).ok_or(SolveError::NotTwoEdgeConnected)?;
        let (edges, mst_weight) = compose_mst_plus(g, &tree, &aug);
        let mut trace = Vec::new();
        if req.trace >= TraceLevel::Summary {
            trace.push(format!(
                "greedy picks={} candidates={}",
                aug.len(),
                g.m() - (g.n() - 1)
            ));
        }
        Ok(SolveReport {
            algorithm: "greedy".into(),
            label: "greedy baseline".into(),
            edges,
            weight: mst_weight + aug_weight,
            mst_weight: Some(mst_weight),
            augmentation_weight: Some(aug_weight),
            lower_bound: mst_weight as f64,
            trace,
            ..SolveReport::default()
        })
    }
}

/// The unweighted MIS + petals special case (Section 3.6.1), run on the
/// MST (4-approximate augmentation for unit weights).
struct UnweightedSolver;

impl Solver for UnweightedSolver {
    fn name(&self) -> &'static str {
        "unweighted"
    }

    fn description(&self) -> &'static str {
        "the Section 3.6.1 MIS+petals pipeline (ignores weights; 4-approximate augmentation on unit weights)"
    }

    fn solve(
        &self,
        g: &Graph,
        req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        cx.checkpoint()?;
        // Checked here, not just inside the TAP engine: `RootedTree::mst`
        // panics on a disconnected graph, and the trait contract promises
        // `NotTwoEdgeConnected` on every infeasible input.
        if !algo::is_two_edge_connected(g) {
            return Err(SolveError::NotTwoEdgeConnected);
        }
        let tree = RootedTree::mst(g);
        cx.checkpoint()?;
        let res = decss_core::algorithm::approximate_tap_unweighted(g, &tree)?;
        let (edges, mst_weight) = compose_mst_plus(g, &tree, &res.augmentation);
        let mut trace = Vec::new();
        if req.trace >= TraceLevel::Summary {
            let s = res.stats;
            trace.push(format!(
                "layers={} segments={} anchors={} virtual-edges={}",
                s.num_layers, s.num_segments, s.anchors, s.virtual_edges
            ));
        }
        ledger_trace(&mut trace, req.trace, &res.ledger);
        Ok(SolveReport {
            algorithm: "unweighted".into(),
            label: "unweighted (Section 3.6.1)".into(),
            edges,
            weight: mst_weight + res.weight,
            mst_weight: Some(mst_weight),
            augmentation_weight: Some(res.weight),
            lower_bound: (mst_weight as f64).max(res.dual_lower_bound),
            rounds: Some(res.ledger.total_rounds()),
            tap_stats: Some(res.stats),
            trace,
            ..SolveReport::default()
        })
    }
}

/// Exact minimum-weight 2-ECSS by branch-and-bound subset search (tiny
/// instances; the problem is NP-hard).
struct ExactSolver;

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn description(&self) -> &'static str {
        "exact optimum by pruned subset enumeration (instances up to 22 edges; NP-hard)"
    }

    fn solve(
        &self,
        g: &Graph,
        _req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        if g.m() > decss_baselines::exact_ecss::MAX_EDGES {
            return Err(SolveError::TooLarge {
                algorithm: "exact",
                limit: decss_baselines::exact_ecss::MAX_EDGES,
                got: g.m(),
                unit: "edges",
            });
        }
        cx.checkpoint()?;
        let (edges, weight) = exact_two_ecss(g).ok_or(SolveError::NotTwoEdgeConnected)?;
        Ok(SolveReport {
            algorithm: "exact".into(),
            label: "exact optimum".into(),
            edges,
            weight,
            lower_bound: weight as f64,
            guarantee: Some(1.0),
            ..SolveReport::default()
        })
    }
}

/// The per-tree-edge cheapest-cover heuristic (unbounded ratio; the
/// sanity baseline).
struct CheapestCoverSolver;

impl Solver for CheapestCoverSolver {
    fn name(&self) -> &'static str {
        "cheapest-cover"
    }

    fn description(&self) -> &'static str {
        "per-tree-edge cheapest-cover heuristic (unbounded ratio; sanity baseline)"
    }

    fn solve(
        &self,
        g: &Graph,
        _req: &SolveRequest,
        cx: &mut SolveCx,
    ) -> Result<SolveReport, SolveError> {
        cx.checkpoint()?;
        if !algo::is_two_edge_connected(g) {
            return Err(SolveError::NotTwoEdgeConnected);
        }
        let tree = RootedTree::mst(g);
        cx.checkpoint()?;
        let (aug, aug_weight) =
            cheapest_cover_tap(g, &tree).ok_or(SolveError::NotTwoEdgeConnected)?;
        let (edges, mst_weight) = compose_mst_plus(g, &tree, &aug);
        Ok(SolveReport {
            algorithm: "cheapest-cover".into(),
            label: "cheapest-cover heuristic".into(),
            edges,
            weight: mst_weight + aug_weight,
            mst_weight: Some(mst_weight),
            augmentation_weight: Some(aug_weight),
            lower_bound: mst_weight as f64,
            ..SolveReport::default()
        })
    }
}
