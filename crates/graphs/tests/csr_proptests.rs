//! Property tests pinning down the CSR adjacency layer's contract:
//! `neighbors(v)` must behave exactly like the straightforward
//! `Vec<Vec<(EdgeId, VertexId)>>` representation it replaced — same
//! entries, same insertion order, parallel edges included — for every
//! graph a `GraphBuilder` can produce.

use decss_graphs::{EdgeId, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// A random multigraph as a raw edge list (parallel edges likely: with
/// few vertices, many of the random pairs repeat).
fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2usize..24, 0usize..120, 0u64..1_000_000).prop_map(|(n, m, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let edges = (0..m)
            .map(|_| {
                let u = (next() % n as u64) as u32;
                let mut v = (next() % n as u64) as u32;
                if v == u {
                    v = (v + 1) % n as u32;
                }
                (u, v, next() % 64 + 1)
            })
            .collect();
        (n, edges)
    })
}

/// The pre-CSR reference representation, built the way `Graph::from_parts`
/// used to build it: push `(id, other)` onto both endpoints in edge order.
fn reference_adjacency(n: usize, g: &Graph) -> Vec<Vec<(EdgeId, VertexId)>> {
    let mut adj = vec![Vec::new(); n];
    for (id, e) in g.edges() {
        adj[e.u.index()].push((id, e.v));
        adj[e.v.index()].push((id, e.u));
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `neighbors(v)` matches the nested-Vec reference exactly — entries,
    /// multiplicity (parallel edges), and insertion order.
    #[test]
    fn csr_matches_reference_representation((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let reference = reference_adjacency(n, &g);
        for v in g.vertices() {
            prop_assert_eq!(
                g.neighbors(v),
                reference[v.index()].as_slice(),
                "vertex {}",
                v
            );
            prop_assert_eq!(g.degree(v), reference[v.index()].len());
            prop_assert_eq!(g.neighbors(v), g.incident(v));
        }
    }

    /// Round trip: rebuilding through `GraphBuilder` from the edge list
    /// reproduces an identical graph (CSR arena included — `Graph: Eq`
    /// compares offsets and ports).
    #[test]
    fn builder_round_trip_is_identity((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut b = GraphBuilder::new(g.n());
        for (_, e) in g.edges() {
            b.add_edge(e.u.0, e.v.0, e.weight).unwrap();
        }
        let rebuilt = b.build().unwrap();
        prop_assert_eq!(&g, &rebuilt);
    }

    /// Arena global invariants: total ports = 2m, each vertex's run is
    /// exactly its slice of the arena, runs tile the arena in vertex
    /// order, and every port agrees with the edge table.
    #[test]
    fn arena_is_consistent((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g.port_arena().len(), 2 * g.m());
        let mut offset = 0usize;
        for v in g.vertices() {
            let run = g.neighbors(v);
            prop_assert_eq!(run, &g.port_arena()[offset..offset + run.len()]);
            offset += run.len();
            for &(id, w) in run {
                let e = g.edge(id);
                prop_assert!(e.has_endpoint(v));
                prop_assert_eq!(e.other(v), w);
            }
        }
        prop_assert_eq!(offset, g.port_arena().len());
    }

    /// Per-vertex port lists are sorted by edge id — the precise statement
    /// of "insertion order" for a CSR built from an ordered edge list.
    #[test]
    fn ports_are_in_insertion_order((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, edges).unwrap();
        for v in g.vertices() {
            let ids: Vec<u32> = g.neighbors(v).iter().map(|&(id, _)| id.0).collect();
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "vertex {}: {:?}", v, ids);
        }
    }
}

/// Parallel edges keep distinct ids and both appear, in order.
#[test]
fn parallel_edges_distinct_ports() {
    let g = Graph::from_edges(2, [(0, 1, 5), (1, 0, 7), (0, 1, 9)]).unwrap();
    let ports: Vec<(EdgeId, VertexId)> = g.neighbors(VertexId(0)).to_vec();
    assert_eq!(
        ports,
        vec![
            (EdgeId(0), VertexId(1)),
            (EdgeId(1), VertexId(1)),
            (EdgeId(2), VertexId(1)),
        ]
    );
    assert_eq!(g.degree(VertexId(1)), 3);
}
