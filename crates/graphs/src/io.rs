//! Plain-text graph serialization (a DIMACS-flavoured edge-list format).
//!
//! ```text
//! # optional comments
//! p <n> <m>
//! e <u> <v> <weight>     (m lines, 0-based vertex ids)
//! ```
//!
//! Used by the `decss` CLI so real topologies can be fed to the
//! algorithms without writing Rust.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphError};
use std::fmt;

/// Errors when parsing the text format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The `p n m` header line is missing or malformed.
    BadHeader(String),
    /// An edge line is malformed.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The number of edge lines does not match the header.
    WrongEdgeCount {
        /// Edges promised by the header.
        expected: usize,
        /// Edges actually present.
        found: usize,
    },
    /// The edges violate graph validity (self-loop / out of range).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content:?}")
            }
            ParseError::WrongEdgeCount { expected, found } => {
                write!(f, "header promised {expected} edges, found {found}")
            }
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns [`ParseError`] on any structural problem; parsing is strict
/// so silently-wrong topologies cannot slip into experiments.
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut parts = header.split_whitespace();
    let (n, m) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some("p"), Some(n), Some(m), None) => {
            let n: usize = n.parse().map_err(|_| ParseError::BadHeader(header.into()))?;
            let m: usize = m.parse().map_err(|_| ParseError::BadHeader(header.into()))?;
            (n, m)
        }
        _ => return Err(ParseError::BadHeader(header.into())),
    };
    let mut builder = GraphBuilder::new(n);
    let mut found = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("e"), Some(u), Some(v), Some(w), None) => {
                let parse = || -> Option<(u32, u32, u64)> {
                    Some((u.parse().ok()?, v.parse().ok()?, w.parse().ok()?))
                };
                let (u, v, w) =
                    parse().ok_or(ParseError::BadEdge { line: line_no, content: line.into() })?;
                builder.add_edge(u, v, w)?;
                found += 1;
            }
            _ => {
                return Err(ParseError::BadEdge { line: line_no, content: line.into() });
            }
        }
    }
    if found != m {
        return Err(ParseError::WrongEdgeCount { expected: m, found });
    }
    Ok(builder.build()?)
}

/// Serializes a graph to the text format.
pub fn format_graph(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 16 * g.m());
    out.push_str(&format!("p {} {}\n", g.n(), g.m()));
    for (_, e) in g.edges() {
        out.push_str(&format!("e {} {} {}\n", e.u.0, e.v.0, e.weight));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::gnp_two_ec(20, 0.2, 50, 3);
        let text = format_graph(&g);
        let back = parse_graph(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\np 3 2\n# edges\ne 0 1 5\ne 1 2 7\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.total_weight(), 12);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(parse_graph("q 3 2"), Err(ParseError::BadHeader(_))));
        assert!(matches!(parse_graph(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(parse_graph("p 3"), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn bad_edge_rejected() {
        let err = parse_graph("p 2 1\ne 0 x 1").unwrap_err();
        assert!(matches!(err, ParseError::BadEdge { line: 2, .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn wrong_count_rejected() {
        let err = parse_graph("p 3 2\ne 0 1 1").unwrap_err();
        assert_eq!(err, ParseError::WrongEdgeCount { expected: 2, found: 1 });
    }

    #[test]
    fn graph_errors_propagate() {
        let err = parse_graph("p 2 1\ne 0 0 1").unwrap_err();
        assert!(matches!(err, ParseError::Graph(GraphError::SelfLoop { .. })));
        let err = parse_graph("p 2 1\ne 0 9 1").unwrap_err();
        assert!(matches!(err, ParseError::Graph(GraphError::VertexOutOfRange { .. })));
    }
}
