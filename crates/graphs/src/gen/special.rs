//! Structured generators: paths, cycles, cliques, lollipops (the
//! `Ω(D + sqrt(n))` lower-bound shape), caterpillars (bounded pathwidth),
//! ladders, and hypercubes.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::weight::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::random::random_weights;

/// A path on `n` vertices with unit weights (not 2-edge-connected; used
/// by substrate tests).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) as u32 {
        b.add_edge(i, i + 1, 1).expect("in range");
    }
    b.build().expect("non-empty")
}

/// A cycle on `n >= 3` vertices with random weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, (i + 1) % n as u32, w).expect("in range");
    }
    b.build().expect("non-empty")
}

/// The complete graph `K_n` with random weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn complete(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "complete graph for 2-ECSS needs n >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(i, j, w).expect("in range");
        }
    }
    b.build().expect("non-empty")
}

/// A 2-edge-connected "lollipop": a dense clique of `~sqrt(n)` vertices
/// attached to the two ends of a long *doubled* path (two parallel edge
/// chains made 2-edge-connected by connecting both path ends into the
/// clique). Diameter `Θ(n)` after the clique, which stresses the `D`
/// term; used as the worst-case family for the shortcut experiments.
///
/// # Panics
///
/// Panics if `n < 8`.
pub fn lollipop_two_ec(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 8, "lollipop needs n >= 8");
    let mut rng = StdRng::seed_from_u64(seed);
    let k = (n as f64).sqrt().ceil() as usize; // clique size
    let k = k.clamp(3, n - 3);
    let mut b = GraphBuilder::new(n);
    // Clique on 0..k.
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(i, j, w).expect("in range");
        }
    }
    // Path k-1 -> k -> k+1 -> ... -> n-1.
    for i in (k - 1) as u32..(n - 1) as u32 {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, i + 1, w).expect("in range");
    }
    // Close the handle: far path end back into the clique, making the
    // path edges non-bridges.
    let w = random_weights(&mut rng, max_weight);
    b.add_edge((n - 1) as u32, 0, w).expect("in range");
    b.build().expect("non-empty")
}

/// A 2-edge-connected caterpillar-like graph of bounded pathwidth: a
/// spine cycle with short legs, each leg closed by an edge back to the
/// spine (so legs are not bridges).
///
/// # Panics
///
/// Panics if `spine < 4` or `leg_len == 0`.
pub fn caterpillar_two_ec(spine: usize, leg_len: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(spine >= 4 && leg_len >= 1, "need spine >= 4 and leg_len >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spine + spine / 2 * leg_len;
    let mut b = GraphBuilder::new(n);
    // Spine cycle 0..spine.
    for i in 0..spine as u32 {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, (i + 1) % spine as u32, w).expect("in range");
    }
    // Legs hang off every second spine vertex and loop back to the next
    // spine vertex, forming small cycles.
    let mut next = spine as u32;
    for s in (0..spine).step_by(2) {
        if next as usize + leg_len > n {
            break;
        }
        let mut prev = s as u32;
        for _ in 0..leg_len {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(prev, next, w).expect("in range");
            prev = next;
            next += 1;
        }
        let w = random_weights(&mut rng, max_weight);
        let back = ((s + 1) % spine) as u32;
        b.add_edge(prev, back, w).expect("in range");
    }
    b.build().expect("non-empty")
}

/// A circular ladder (prism) `CL_n`: two concentric `n`-cycles joined by
/// rungs. Planar, 3-regular, 2-edge-connected.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ladder(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "ladder needs n >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(2 * n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w1 = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w1).expect("in range");
        let w2 = random_weights(&mut rng, max_weight);
        b.add_edge(n as u32 + i, n as u32 + j, w2).expect("in range");
        let w3 = random_weights(&mut rng, max_weight);
        b.add_edge(i, n as u32 + i, w3).expect("in range");
    }
    b.build().expect("non-empty")
}

/// The `d`-dimensional hypercube `Q_d` with random weights: diameter `d =
/// log2 n`, 2-edge-connected for `d >= 2`.
///
/// # Panics
///
/// Panics if `d < 2` or `d > 20`.
pub fn hypercube(d: u32, max_weight: Weight, seed: u64) -> Graph {
    assert!((2..=20).contains(&d), "hypercube dimension must be in 2..=20");
    let n = 1usize << d;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(v, u, w).expect("in range");
            }
        }
    }
    b.build().expect("non-empty")
}

/// A 2-edge-connected "broom": about `√n` disjoint paths of length `√n`
/// whose both ends attach to a small hub cycle. Diameter is `Θ(√n)` but
/// the only way to shortcut a path-part is through the hub, so any
/// tree-restricted shortcut pays congestion `Θ(√n)` — the family where
/// `SC(G)` genuinely sits at `D + √n` rather than `Õ(D)`.
///
/// # Panics
///
/// Panics if `n < 16`.
pub fn broom_two_ec(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 16, "broom needs n >= 16");
    let mut rng = StdRng::seed_from_u64(seed);
    let k = (n as f64).sqrt().floor() as usize; // number of teeth
    let len = (n - 4) / k; // tooth length
    let hub = 4usize; // hub cycle vertices 0..4
    let total = hub + k * len;
    let mut b = GraphBuilder::new(total);
    for i in 0..hub as u32 {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, (i + 1) % hub as u32, w).expect("in range");
    }
    let mut next = hub as u32;
    for t in 0..k {
        let attach = (t % hub) as u32;
        let mut prev = attach;
        for _ in 0..len {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(prev, next, w).expect("in range");
            prev = next;
            next += 1;
        }
        // Close the tooth back into the hub so its edges are not bridges.
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(prev, ((t + 1) % hub) as u32, w).expect("in range");
    }
    b.build().expect("non-empty")
}

/// The Das Sarma et al. lower-bound shape (the graph family behind the
/// paper's `Ω̃(D + √n)` hardness): `p ≈ √n` disjoint paths of length
/// `p`, plus a balanced binary tree over `p` leaves where leaf `j`
/// attaches to the `j`-th vertex of *every* path. Diameter `O(log n)`,
/// yet any low-dilation shortcut for the path partition must cram `√n`
/// parts through the tree — congestion `Ω̃(√n)`. This is the family
/// where `SC(G)` provably sits at `√n` despite tiny `D`.
///
/// # Panics
///
/// Panics if `n < 16`.
pub fn hard_sqrt_two_ec(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 16, "hard instance needs n >= 16");
    let mut rng = StdRng::seed_from_u64(seed);
    // p = number of paths and path length.
    let p = (n as f64).sqrt().floor() as usize;
    // Vertices: paths occupy ids [0, p*p); the binary tree over p leaves
    // occupies [p*p, p*p + 2p - 1) (heap layout, 1-based within block).
    let path_v = |i: usize, j: usize| (i * p + j) as u32;
    let tree_base = p * p;
    let tree_size = 2 * p - 1; // heap-complete-ish binary tree
    let total = tree_base + tree_size;
    let mut b = GraphBuilder::new(total);
    // The p paths.
    for i in 0..p {
        for j in 0..p - 1 {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(path_v(i, j), path_v(i, j + 1), w).expect("in range");
        }
    }
    // Binary tree (heap indices 0..tree_size; children 2k+1, 2k+2).
    let tv = |k: usize| (tree_base + k) as u32;
    for k in 1..tree_size {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(tv((k - 1) / 2), tv(k), w).expect("in range");
    }
    // Leaves of the heap are the last p nodes; leaf j attaches to the
    // j-th vertex of every path.
    let leaf = |j: usize| tv(tree_size - p + j);
    for j in 0..p {
        for i in 0..p {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(leaf(j), path_v(i, j), w).expect("in range");
        }
    }
    b.build().expect("non-empty")
}

/// A random unit-weight expander-ish graph used by congestion tests: a
/// cycle plus `n` random chords.
pub fn chorded_cycle(n: usize, seed: u64) -> Graph {
    assert!(n >= 4, "chorded cycle needs n >= 4");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        b.add_edge(i, (i + 1) % n as u32, 1).expect("in range");
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let _ = b.add_edge_dedup(u, v, 1).expect("in range");
        }
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn hard_sqrt_shape() {
        let g = hard_sqrt_two_ec(100, 10, 0);
        assert!(algo::is_two_edge_connected(&g));
        // Diameter is logarithmic: up one path, through the tree, down.
        let d = algo::diameter(&g);
        assert!(d <= 2 * 10 + 4, "D = {d}"); // 2 log2(sqrt(100)) + slack
        assert!(g.n() >= 100);
    }

    #[test]
    fn broom_shape() {
        let g = broom_two_ec(100, 10, 0);
        assert!(algo::is_two_edge_connected(&g));
        // Diameter about 2 * tooth length ~ 2 sqrt(n).
        let d = algo::diameter(&g) as f64;
        assert!(d >= (g.n() as f64).sqrt() / 2.0 && d <= 4.0 * (g.n() as f64).sqrt());
    }

    #[test]
    fn generators_yield_two_edge_connected_graphs() {
        assert!(algo::is_two_edge_connected(&cycle(8, 10, 0)));
        assert!(algo::is_two_edge_connected(&broom_two_ec(20, 10, 0)));
        assert!(algo::is_two_edge_connected(&complete(6, 10, 0)));
        assert!(algo::is_two_edge_connected(&lollipop_two_ec(30, 10, 0)));
        assert!(algo::is_two_edge_connected(&caterpillar_two_ec(10, 3, 10, 0)));
        assert!(algo::is_two_edge_connected(&ladder(5, 10, 0)));
        assert!(algo::is_two_edge_connected(&hypercube(4, 10, 0)));
        assert!(algo::is_two_edge_connected(&chorded_cycle(12, 0)));
    }

    #[test]
    fn path_is_a_tree() {
        let g = path(6);
        assert_eq!(g.m(), 5);
        assert!(algo::is_connected(&g));
        assert!(!algo::is_two_edge_connected(&g));
    }

    #[test]
    fn lollipop_has_large_diameter() {
        let g = lollipop_two_ec(100, 10, 1);
        assert!(algo::diameter(&g) as usize > 30);
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let g = hypercube(5, 10, 2);
        assert_eq!(g.n(), 32);
        assert_eq!(algo::diameter(&g), 5);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(7, 10, 0);
        assert_eq!(g.m(), 21);
    }
}
