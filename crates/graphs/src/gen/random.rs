//! Random graph generators (seeded, deterministic).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::weight::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a weight uniformly from `1..=max_weight`.
pub fn random_weights(rng: &mut StdRng, max_weight: Weight) -> Weight {
    rng.gen_range(1..=max_weight.max(1))
}

/// An Erdős–Rényi graph `G(n, p)` overlaid on a Hamiltonian cycle, which
/// makes it 2-edge-connected for any `p` (the cycle alone is a 2-ECSS).
///
/// Weights are uniform in `1..=max_weight`.
///
/// # Panics
///
/// Panics if `n < 3` (no 2-edge-connected simple graph exists).
pub fn gnp_two_ec(n: usize, p: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "2-edge-connected graphs need n >= 3, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w).expect("cycle edges are valid");
    }
    for i in 0..n as u32 {
        for j in (i + 2)..n as u32 {
            // Skip the wrap-around cycle edge {0, n-1}.
            if i == 0 && j == n as u32 - 1 {
                continue;
            }
            if rng.gen_bool(p) {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(i, j, w).expect("chord edges are valid");
            }
        }
    }
    b.build().expect("n >= 3")
}

/// [`gnp_two_ec`] with geometric skip-sampling: the same cycle-plus-
/// `G(n, p)`-chords family, but the chord loop runs in expected `O(m)`
/// instead of the `O(n²)` per-pair coin flips above, so sparse `p` at
/// large `n` (the atlas sizes) is cheap.
///
/// The candidate pairs are linearised in the same `(i, j)` row-major
/// order as [`gnp_two_ec`] and each is kept with probability `p` by
/// jumping `floor(ln(U) / ln(1 - p))` pairs at a time. The RNG stream
/// necessarily differs from the per-pair version, so this is a **new
/// entry point** — existing callers of [`gnp_two_ec`] keep their exact
/// byte-for-byte graphs.
///
/// # Panics
///
/// Panics if `n < 3` or `p` is not in `[0, 1]`.
pub fn gnp_two_ec_skip(n: usize, p: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "2-edge-connected graphs need n >= 3, got {n}");
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w).expect("cycle edges are valid");
    }
    if p >= 1.0 {
        // Degenerate: every chord survives; no skipping possible.
        for i in 0..n as u32 {
            for j in (i + 2)..n as u32 {
                if i == 0 && j == n as u32 - 1 {
                    continue;
                }
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(i, j, w).expect("chord edges are valid");
            }
        }
        return b.build().expect("n >= 3");
    }
    if p > 0.0 {
        // Linear index k over all pairs i < j (row-major); cycle pairs
        // are sampled but discarded, which leaves every *chord* kept
        // independently with probability exactly p.
        let total = (n as u64) * (n as u64 - 1) / 2;
        let ln_q = (1.0 - p).ln();
        let mut k = 0u64;
        let mut i = 0u64; // current row, with rows of width n-1-i
        let mut row_start = 0u64;
        loop {
            // U in (0, 1]: ln is finite and the skip is >= 0.
            let u = 1.0 - rng.gen::<f64>();
            k += (u.ln() / ln_q).floor() as u64;
            if k >= total {
                break;
            }
            while k >= row_start + (n as u64 - 1 - i) {
                row_start += n as u64 - 1 - i;
                i += 1;
            }
            let j = i + 1 + (k - row_start);
            let wraparound = i == 0 && j == n as u64 - 1;
            if j >= i + 2 && !wraparound {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(i as u32, j as u32, w).expect("chord edges are valid");
            }
            k += 1;
        }
    }
    b.build().expect("n >= 3")
}

/// A sparse 2-edge-connected graph: Hamiltonian cycle plus `extra` random
/// chords (deduplicated), so `m = n + extra'` with `extra' <= extra`.
///
/// This is the workhorse workload: the number of non-tree edges — the
/// "sets" of the TAP set-cover instance — is directly controlled.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn sparse_two_ec(n: usize, extra: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "2-edge-connected graphs need n >= 3, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w).expect("cycle edges are valid");
    }
    let mut attempts = 0usize;
    let mut added = 0usize;
    while added < extra && attempts < extra * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let w = random_weights(&mut rng, max_weight);
        if b.add_edge_dedup(u, v, w).expect("random chord endpoints valid") {
            added += 1;
        }
    }
    b.build().expect("n >= 3")
}

/// A random *branching* spanning tree (edge ids `0..n-1`, vertex `v`'s
/// parent drawn from `0..v`) plus enough random chords to make the graph
/// 2-edge-connected, plus `extra` more chords.
///
/// Unlike [`sparse_two_ec`] (whose unit-weight MST degenerates to the
/// Hamiltonian cycle path), this generator produces trees with real
/// junctions — the shape the layering/MIS machinery is about. The first
/// `n - 1` edge ids are always the tree edges.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn tree_plus_chords(n: usize, extra: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "tree_plus_chords needs n >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(parent, v, w).expect("in range");
    }
    // Close every leaf-ish vertex with a random chord, then keep adding
    // random chords until bridgeless.
    let mut attempts = 0usize;
    loop {
        let g = b.clone().build().expect("non-empty");
        let bridges = crate::algo::bridges(&g);
        if bridges.is_empty() {
            break;
        }
        attempts += 1;
        assert!(attempts < 20 * n, "failed to 2-edge-connect the tree");
        // Target a bridge directly: connect a vertex below it to one
        // outside its subtree.
        let e = g.edge(bridges[rng.gen_range(0..bridges.len())]);
        let (u, v) = (e.u.0, e.v.0);
        let x = rng.gen_range(0..n as u32);
        let target = if x == u || x == v {
            (x + 1) % n as u32
        } else {
            x
        };
        let pick = if rng.gen_bool(0.5) { u } else { v };
        if pick != target {
            let w = random_weights(&mut rng, max_weight);
            let _ = b.add_edge_dedup(pick, target, w).expect("in range");
        }
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let w = random_weights(&mut rng, max_weight);
            let _ = b.add_edge_dedup(u, v, w).expect("in range");
        }
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn gnp_is_two_edge_connected() {
        for seed in 0..5 {
            let g = gnp_two_ec(24, 0.1, 100, seed);
            assert!(algo::is_two_edge_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn gnp_is_deterministic() {
        let a = gnp_two_ec(16, 0.3, 50, 7);
        let b = gnp_two_ec(16, 0.3, 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_controls_edge_count() {
        let g = sparse_two_ec(30, 10, 100, 3);
        assert!(algo::is_two_edge_connected(&g));
        assert!(g.m() >= 30 && g.m() <= 40, "m = {}", g.m());
    }

    #[test]
    fn gnp_skip_is_two_edge_connected_and_deterministic() {
        for seed in 0..5 {
            let g = gnp_two_ec_skip(24, 0.1, 100, seed);
            assert!(algo::is_two_edge_connected(&g), "seed {seed}");
            assert_eq!(g, gnp_two_ec_skip(24, 0.1, 100, seed), "seed {seed}");
        }
    }

    #[test]
    fn gnp_skip_matches_expected_density() {
        // n = 300, p = 4/n: ~296 expected chords on top of the 300-cycle.
        let n = 300;
        let p = 4.0 / n as f64;
        let mut total = 0usize;
        for seed in 0..10 {
            total += gnp_two_ec_skip(n, p, 50, seed).m() - n;
        }
        let mean = total as f64 / 10.0;
        let expected = p * (n as f64 * (n as f64 - 1.0) / 2.0 - n as f64);
        assert!(
            (mean - expected).abs() < expected * 0.25,
            "mean chords {mean} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_skip_handles_degenerate_probabilities() {
        let empty = gnp_two_ec_skip(12, 0.0, 10, 3);
        assert_eq!(empty.m(), 12, "p = 0 leaves just the cycle");
        let full = gnp_two_ec_skip(12, 1.0, 10, 3);
        assert_eq!(full.m(), 12 * 11 / 2, "p = 1 yields the complete graph");
        assert!(algo::is_two_edge_connected(&full));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn small_n_rejected() {
        let _ = gnp_two_ec(2, 0.5, 10, 0);
    }

    #[test]
    fn tree_plus_chords_is_two_ec_with_branching_tree() {
        let mut saw_junction = false;
        for seed in 0..5 {
            let g = tree_plus_chords(30, 5, 20, seed);
            assert!(algo::is_two_edge_connected(&g), "seed {seed}");
            // Tree edges are ids 0..n-1; check some vertex has 2+ children.
            let mut children = [0u32; 30];
            for id in 0..29u32 {
                let e = g.edge(crate::EdgeId(id));
                children[e.u.index().min(e.v.index())] += 1;
            }
            saw_junction |= children.iter().any(|&c| c >= 2);
        }
        assert!(saw_junction, "no branching tree generated at all");
    }
}
