//! Planar grid and torus generators.
//!
//! Grids are the canonical "well-behaved" family for the shortcut
//! experiments: planar, diameter `Θ(rows+cols)`, and 2-edge-connected for
//! `rows, cols >= 2`.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::weight::Weight;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::random::random_weights;

/// A `rows x cols` grid with random weights in `1..=max_weight`.
///
/// # Panics
///
/// Panics if `rows < 2` or `cols < 2` (smaller grids are not
/// 2-edge-connected).
pub fn grid(rows: usize, cols: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(rows >= 2 && cols >= 2, "grid needs rows, cols >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(idx(r, c), idx(r, c + 1), w).expect("in range");
            }
            if r + 1 < rows {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(idx(r, c), idx(r + 1, c), w).expect("in range");
            }
        }
    }
    b.build().expect("non-empty")
}

/// A `rows x cols` torus (grid with wrap-around) with random weights.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (wrap-around would create parallel
/// edges or self-loops).
pub fn torus(rows: usize, cols: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |r: usize, c: usize| ((r % rows) * cols + (c % cols)) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let w1 = random_weights(&mut rng, max_weight);
            b.add_edge(idx(r, c), idx(r, c + 1), w1).expect("in range");
            let w2 = random_weights(&mut rng, max_weight);
            b.add_edge(idx(r, c), idx(r + 1, c), w2).expect("in range");
        }
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, 10, 1);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(algo::is_two_edge_connected(&g));
        assert_eq!(algo::diameter(&g), 2 + 3);
    }

    #[test]
    fn torus_structure() {
        let g = torus(3, 3, 10, 1);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 18);
        assert!(algo::is_two_edge_connected(&g));
    }

    #[test]
    #[should_panic(expected = "rows, cols >= 2")]
    fn degenerate_grid_rejected() {
        let _ = grid(1, 5, 10, 0);
    }
}
