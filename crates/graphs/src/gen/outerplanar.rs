//! Outerplanar generator: a cycle with non-crossing chords.
//!
//! Outerplanar graphs have treewidth 2 and small shortcut complexity,
//! making them the low-diameter "well-behaved" family for Experiment E5
//! (grids are planar but already have `D = Θ(sqrt(n))`, so they cannot
//! separate `Õ(D)` from `Õ(D + sqrt(n))`; chord-dense outerplanar disks
//! have `D = O(log n)`).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::weight::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::random::random_weights;

/// A maximal-ish outerplanar "disk": cycle `0..n` plus recursive
/// non-crossing chords (a balanced triangulation of the polygon, each
/// chord kept with probability `chord_p`). With `chord_p = 1` the
/// diameter is `O(log n)`.
///
/// # Panics
///
/// Panics if `n < 4` or `chord_p` is not in `[0, 1]`.
pub fn outerplanar_disk(n: usize, chord_p: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 4, "outerplanar disk needs n >= 4");
    assert!((0.0..=1.0).contains(&chord_p), "chord_p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, (i + 1) % n as u32, w).expect("in range");
    }
    // Recursive balanced chords over the arc [lo, hi] (indices along the
    // cycle), never crossing because each call splits its own arc.
    let mut stack = vec![(0u32, n as u32 - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo < 2 {
            continue;
        }
        let mid = (lo + hi) / 2;
        // Chord {lo, mid} and {mid, hi} close the two halves.
        for (a, c) in [(lo, mid), (mid, hi)] {
            if c > a + 1 && rng.gen_bool(chord_p) {
                let w = random_weights(&mut rng, max_weight);
                let _ = b.add_edge_dedup(a, c, w).expect("in range");
            }
        }
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn disk_is_two_edge_connected() {
        let g = outerplanar_disk(32, 1.0, 10, 0);
        assert!(algo::is_two_edge_connected(&g));
    }

    #[test]
    fn full_disk_has_logarithmic_diameter() {
        let g = outerplanar_disk(256, 1.0, 10, 1);
        assert!(algo::diameter(&g) <= 2 * 8 + 2, "D = {}", algo::diameter(&g));
    }

    #[test]
    fn chordless_disk_is_a_cycle() {
        let g = outerplanar_disk(16, 0.0, 10, 2);
        assert_eq!(g.m(), 16);
    }

    #[test]
    fn disk_is_deterministic() {
        assert_eq!(outerplanar_disk(20, 0.5, 10, 9), outerplanar_disk(20, 0.5, 10, 9));
    }
}
