//! The workload atlas: graph families that stretch the sweep grid beyond
//! the grid/hard-sqrt slice — heavy-tailed degree sequences, planar road
//! meshes, expanders, dense near-cliques, and an adversarial multi-gadget
//! worst case for the shortcut pipeline. Every generator is seeded,
//! deterministic, and 2-edge-connected by construction.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::weight::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::random::random_weights;

/// The atlas families, kept separate from [`super::Family`] so the
/// original sweep grid (and everything pinned to its `ALL` order) is
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtlasFamily {
    /// Preferential attachment over a Hamiltonian cycle: heavy-tailed
    /// degrees, a few hubs of degree `Θ(√n)`.
    PowerLaw,
    /// A planar "brick wall" road mesh: long rows joined by side rails
    /// and sparse interior rungs.
    RoadMesh,
    /// The union of several random Hamiltonian cycles: constant-degree,
    /// logarithmic diameter, no sparse cuts.
    Expander,
    /// A complete graph with a seeded fraction of edges knocked out.
    NearClique,
    /// A ring of Das Sarma-style hard gadgets: every hierarchy level of
    /// the shortcut pipeline meets a fresh `√b` congestion core.
    Adversarial,
}

/// Every atlas family, in a fixed documented order.
pub const ALL: [AtlasFamily; 5] = [
    AtlasFamily::PowerLaw,
    AtlasFamily::RoadMesh,
    AtlasFamily::Expander,
    AtlasFamily::NearClique,
    AtlasFamily::Adversarial,
];

impl AtlasFamily {
    /// The CLI / job-dialect label.
    pub fn label(self) -> &'static str {
        match self {
            AtlasFamily::PowerLaw => "powerlaw",
            AtlasFamily::RoadMesh => "roadmesh",
            AtlasFamily::Expander => "expander",
            AtlasFamily::NearClique => "nearclique",
            AtlasFamily::Adversarial => "adversarial",
        }
    }

    /// A seeded instance of the family with about `n` vertices (some
    /// families round to their natural block size).
    ///
    /// # Panics
    ///
    /// Panics if `n < 64` — atlas instances are meant for the sweep
    /// grid, not toy sizes.
    pub fn instance(self, n: usize, max_weight: Weight, seed: u64) -> Graph {
        assert!(n >= 64, "atlas instances need n >= 64, got {n}");
        match self {
            AtlasFamily::PowerLaw => powerlaw_two_ec(n, 2, max_weight, seed),
            AtlasFamily::RoadMesh => road_mesh_two_ec(n, max_weight, seed),
            AtlasFamily::Expander => expander_two_ec(n, 3, max_weight, seed),
            AtlasFamily::NearClique => near_clique_two_ec(n, 0.85, max_weight, seed),
            AtlasFamily::Adversarial => adversarial_shortcut_two_ec(n, max_weight, seed),
        }
    }
}

/// Preferential attachment over a base Hamiltonian cycle: each vertex
/// `v` adds `chords_per_vertex` chords whose far endpoints are drawn
/// proportionally to current degree (by sampling the edge-endpoint
/// multiset), so early vertices become hubs. The cycle alone already
/// makes the graph 2-edge-connected.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn powerlaw_two_ec(n: usize, chords_per_vertex: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "2-edge-connected graphs need n >= 3, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Endpoint multiset: sampling a uniform element is sampling a vertex
    // with probability proportional to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * (1 + chords_per_vertex));
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w).expect("cycle edges are valid");
        endpoints.push(i);
        endpoints.push(j);
    }
    for v in 0..n as u32 {
        for _ in 0..chords_per_vertex {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t == v {
                continue;
            }
            let w = random_weights(&mut rng, max_weight);
            if b.add_edge_dedup(v, t, w).expect("chord endpoints valid") {
                endpoints.push(v);
                endpoints.push(t);
            }
        }
    }
    b.build().expect("n >= 3")
}

/// A planar "brick wall" road mesh on a `rows x cols` grid derived from
/// `n`: every row is a full horizontal path, consecutive rows are joined
/// by rails at both ends (columns `0` and `cols-1`) plus a sparse set of
/// seeded interior rungs. Connected and bridgeless: every edge lies on
/// the cycle through its own row, a neighbouring row, and the two rails.
///
/// # Panics
///
/// Panics if `n < 12`.
pub fn road_mesh_two_ec(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 12, "road mesh needs n >= 12, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = ((n as f64).sqrt().ceil() as usize).max(3);
    let rows = (n / cols).max(2);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols - 1 {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(id(r, c), id(r, c + 1), w).expect("in range");
        }
    }
    for r in 0..rows - 1 {
        for &c in &[0, cols - 1] {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(id(r, c), id(r + 1, c), w).expect("in range");
        }
        // About one interior rung per four columns keeps the mesh planar
        // (rungs connect vertically adjacent vertices only) but sparse.
        for c in 1..cols - 1 {
            if rng.gen_bool(0.25) {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(id(r, c), id(r + 1, c), w).expect("in range");
            }
        }
    }
    b.build().expect("rows * cols >= 12")
}

/// The union of `cycles` random Hamiltonian cycles (Fisher–Yates
/// permutations, deduplicated): a constant-degree expander-like graph
/// with diameter `O(log n)` and no sparse cuts. The first cycle alone
/// already makes it 2-edge-connected.
///
/// # Panics
///
/// Panics if `n < 4` or `cycles == 0`.
pub fn expander_two_ec(n: usize, cycles: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 4, "expander needs n >= 4, got {n}");
    assert!(cycles >= 1, "expander needs at least one cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for _ in 0..cycles {
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        for i in 0..n {
            let (u, v) = (perm[i], perm[(i + 1) % n]);
            let w = random_weights(&mut rng, max_weight);
            let _ = b.add_edge_dedup(u, v, w).expect("permuted endpoints valid");
        }
    }
    b.build().expect("n >= 4")
}

/// A dense near-clique: a Hamiltonian cycle plus every remaining pair
/// independently kept with probability `keep`. At `keep` close to 1 this
/// is `K_n` with a seeded sprinkle of missing edges — the `m ≈ n²`
/// corner of the atlas.
///
/// # Panics
///
/// Panics if `n < 3` or `keep` is not in `[0, 1]`.
pub fn near_clique_two_ec(n: usize, keep: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 3, "2-edge-connected graphs need n >= 3, got {n}");
    assert!((0.0..=1.0).contains(&keep), "keep probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n as u32 {
        let j = (i + 1) % n as u32;
        let w = random_weights(&mut rng, max_weight);
        b.add_edge(i, j, w).expect("cycle edges are valid");
    }
    for i in 0..n as u32 {
        for j in (i + 2)..n as u32 {
            if i == 0 && j == n as u32 - 1 {
                continue;
            }
            if rng.gen_bool(keep) {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(i, j, w).expect("in range");
            }
        }
    }
    b.build().expect("n >= 3")
}

/// The shortcut-pipeline worst case: a ring of three Das Sarma-style
/// hard gadgets (`√b` paths of length `√b` hanging under a binary
/// tree, see [`super::hard_sqrt_two_ec`]), with consecutive gadgets
/// joined by **two** vertex-disjoint edges so no junction is a bridge.
/// Each gadget forces `Ω̃(√b)` congestion locally while the ring keeps
/// the global diameter small — the hierarchy meets a fresh congestion
/// core at every level instead of one isolated hard spot.
///
/// # Panics
///
/// Panics if `n < 64`.
pub fn adversarial_shortcut_two_ec(n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 64, "adversarial instance needs n >= 64, got {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = 3usize;
    // Per-gadget path count/length; each gadget has p*p + 2p - 1 vertices.
    let p = ((n / blocks) as f64).sqrt().floor() as usize;
    assert!(p >= 4, "gadget too small for n = {n}");
    let gadget_size = p * p + 2 * p - 1;
    let mut b = GraphBuilder::new(blocks * gadget_size);
    for k in 0..blocks {
        let base = (k * gadget_size) as u32;
        let path_v = |i: usize, j: usize| base + (i * p + j) as u32;
        let tv = |t: usize| base + (p * p + t) as u32;
        for i in 0..p {
            for j in 0..p - 1 {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(path_v(i, j), path_v(i, j + 1), w).expect("in range");
            }
        }
        let tree_size = 2 * p - 1;
        for t in 1..tree_size {
            let w = random_weights(&mut rng, max_weight);
            b.add_edge(tv((t - 1) / 2), tv(t), w).expect("in range");
        }
        let leaf = |j: usize| tv(tree_size - p + j);
        for j in 0..p {
            for i in 0..p {
                let w = random_weights(&mut rng, max_weight);
                b.add_edge(leaf(j), path_v(i, j), w).expect("in range");
            }
        }
    }
    // Ring the gadgets together with two vertex-disjoint edges per
    // junction: gadget k's first two path vertices to gadget k+1's.
    for k in 0..blocks {
        let a = (k * gadget_size) as u32;
        let c = (((k + 1) % blocks) * gadget_size) as u32;
        let w1 = random_weights(&mut rng, max_weight);
        b.add_edge(a, c, w1).expect("in range");
        let w2 = random_weights(&mut rng, max_weight);
        b.add_edge(a + 1, c + 1, w2).expect("in range");
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn every_family_is_two_edge_connected_and_deterministic() {
        for family in ALL {
            for seed in 0..3 {
                let g = family.instance(96, 20, seed);
                assert!(algo::is_two_edge_connected(&g), "{} seed {seed}", family.label());
                let h = family.instance(96, 20, seed);
                assert_eq!(g, h, "{} seed {seed} not deterministic", family.label());
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ALL.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL.len());
    }

    #[test]
    fn powerlaw_grows_hubs() {
        let g = powerlaw_two_ec(200, 2, 10, 1);
        let mut deg = vec![0usize; g.n()];
        for id in 0..g.m() as u32 {
            let e = g.edge(crate::EdgeId(id));
            deg[e.u.index()] += 1;
            deg[e.v.index()] += 1;
        }
        let max = *deg.iter().max().expect("non-empty");
        assert!(max >= 10, "no hub emerged: max degree {max}");
    }

    #[test]
    fn road_mesh_is_sparse_and_wide() {
        let g = road_mesh_two_ec(144, 10, 0);
        assert!(g.m() < 2 * g.n(), "mesh not sparse: m = {}", g.m());
        assert!(algo::diameter(&g) as usize >= 10, "mesh not wide");
    }

    #[test]
    fn expander_has_small_diameter() {
        let g = expander_two_ec(256, 3, 10, 0);
        assert!(algo::diameter(&g) <= 12, "D = {}", algo::diameter(&g));
    }

    #[test]
    fn near_clique_is_dense() {
        let g = near_clique_two_ec(64, 0.85, 10, 0);
        let full = 64 * 63 / 2;
        assert!(g.m() > full * 3 / 4, "m = {} of {full}", g.m());
        assert!(g.m() < full, "a near-clique must miss some edges");
    }

    #[test]
    fn adversarial_is_a_gadget_ring() {
        let g = adversarial_shortcut_two_ec(192, 10, 0);
        assert!(algo::is_two_edge_connected(&g));
        // Three gadgets of (p^2 + 2p - 1) vertices with p = 8.
        assert_eq!(g.n(), 3 * (64 + 15));
    }

    #[test]
    #[should_panic(expected = "n >= 64")]
    fn tiny_atlas_instances_rejected() {
        let _ = AtlasFamily::PowerLaw.instance(32, 10, 0);
    }
}
