//! Deterministic (seeded) generators for the graph families used in the
//! experiments.
//!
//! Every generator returns a *connected* graph; the `*_two_ec` variants
//! additionally guarantee 2-edge-connectivity, which is the precondition
//! of the TAP and 2-ECSS algorithms.

mod atlas;
mod families;
mod grid;
mod outerplanar;
mod random;
mod special;

pub use atlas::{
    adversarial_shortcut_two_ec, expander_two_ec, near_clique_two_ec, powerlaw_two_ec,
    road_mesh_two_ec, AtlasFamily, ALL as ATLAS_ALL,
};
pub use families::{instance, Family};
pub use grid::{grid, torus};
pub use outerplanar::outerplanar_disk;
pub use random::{gnp_two_ec, gnp_two_ec_skip, random_weights, sparse_two_ec, tree_plus_chords};
pub use special::{
    broom_two_ec, caterpillar_two_ec, chorded_cycle, complete, cycle, hard_sqrt_two_ec, hypercube,
    ladder, lollipop_two_ec, path,
};
