//! A single enum tying the generators together, so the experiment
//! harness can sweep `family x size x seed` uniformly.

use crate::graph::Graph;
use crate::weight::Weight;
use std::fmt;

/// The graph families used across the experiment suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Hamiltonian cycle + random chords; `m ≈ 2n`.
    SparseRandom,
    /// Erdős–Rényi over a cycle with `p = 4/n`.
    GnpModerate,
    /// Planar `√n x √n` grid.
    Grid,
    /// Torus (vertex-transitive, no boundary effects).
    Torus,
    /// Outerplanar disk with all chords (`D = O(log n)`, treewidth 2).
    OuterplanarDisk,
    /// Caterpillar of bounded pathwidth.
    Caterpillar,
    /// Clique + long handle (`D = Θ(n − √n)`, worst-case-ish).
    Lollipop,
    /// Hypercube `Q_{log2 n}` (`D = log2 n`).
    Hypercube,
    /// Complete graph.
    Complete,
}

impl Family {
    /// All families, in table order.
    pub const ALL: [Family; 9] = [
        Family::SparseRandom,
        Family::GnpModerate,
        Family::Grid,
        Family::Torus,
        Family::OuterplanarDisk,
        Family::Caterpillar,
        Family::Lollipop,
        Family::Hypercube,
        Family::Complete,
    ];

    /// Stable short label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Family::SparseRandom => "sparse-random",
            Family::GnpModerate => "gnp",
            Family::Grid => "grid",
            Family::Torus => "torus",
            Family::OuterplanarDisk => "outerplanar",
            Family::Caterpillar => "caterpillar",
            Family::Lollipop => "lollipop",
            Family::Hypercube => "hypercube",
            Family::Complete => "complete",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Generates an instance of `family` with *approximately* `n` vertices
/// (families with structural constraints round `n` to a feasible size),
/// weights in `1..=max_weight`.
///
/// Every returned graph is 2-edge-connected.
///
/// # Panics
///
/// Panics if `n < 9` (the smallest size every family supports).
pub fn instance(family: Family, n: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(n >= 9, "family instances need n >= 9, got {n}");
    match family {
        Family::SparseRandom => super::sparse_two_ec(n, n, max_weight, seed),
        Family::GnpModerate => super::gnp_two_ec(n, 4.0 / n as f64, max_weight, seed),
        Family::Grid => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            super::grid(side, side, max_weight, seed)
        }
        Family::Torus => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            super::torus(side, side, max_weight, seed)
        }
        Family::OuterplanarDisk => super::outerplanar_disk(n, 1.0, max_weight, seed),
        Family::Caterpillar => {
            // spine + spine/2 * 2 legs ≈ n  =>  spine ≈ n/2
            let spine = (n / 2).max(4);
            super::caterpillar_two_ec(spine, 2, max_weight, seed)
        }
        Family::Lollipop => super::lollipop_two_ec(n, max_weight, seed),
        Family::Hypercube => {
            let d = (n as f64).log2().round().clamp(3.0, 20.0) as u32;
            super::hypercube(d, max_weight, seed)
        }
        Family::Complete => super::complete(n.min(160), max_weight, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn every_family_is_two_edge_connected() {
        for family in Family::ALL {
            let g = instance(family, 36, 64, 11);
            assert!(
                algo::is_two_edge_connected(&g),
                "family {family} produced a non-2EC graph"
            );
        }
    }

    #[test]
    fn sizes_are_approximate() {
        for family in Family::ALL {
            let g = instance(family, 64, 64, 3);
            assert!(
                g.n() >= 25 && g.n() <= 160,
                "family {family} size {} far from request",
                g.n()
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Family::ALL.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Family::ALL.len());
        assert_eq!(format!("{}", Family::Grid), "grid");
    }
}
