//! Order-independent graph fingerprints with `O(|delta|)` incremental
//! updates.
//!
//! The fingerprint hashes each edge's `(u, v, weight)` triple through a
//! splitmix64-style mixer and combines the per-edge hashes with a
//! wrapping sum, then folds in `n` and `m` through a final mix. Because
//! the combine is commutative, the fingerprint is independent of edge
//! id order — and a mutation (insert / delete / reweight) updates it by
//! adding/subtracting only the affected edges' hashes, instead of the
//! `O(m)` rescan a sequential hash would need. That is what lets the
//! delta-stream service key a mutated graph without walking it.

use crate::edge::EdgeId;
use crate::graph::Graph;
use crate::weight::Weight;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of one edge's `(u, v, weight)` triple. Endpoints are ordered
/// `min, max` so the hash is independent of the stored orientation.
#[inline]
fn edge_hash(u: u32, v: u32, weight: Weight) -> u64 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    mix(mix(((lo as u64) << 32) | hi as u64) ^ weight)
}

/// Order-independent fingerprint of a graph's `(n, edge multiset)`.
///
/// Two graphs with the same vertex count and the same multiset of
/// `(u, v, weight)` edges fingerprint identically regardless of edge id
/// order. Use [`FingerprintAcc`] to maintain the value across
/// mutations in `O(1)` per changed edge.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    FingerprintAcc::of(g).value()
}

/// A running fingerprint: the commutative per-edge-hash sum plus the
/// vertex/edge counts, updatable in `O(1)` per mutation.
///
/// ```
/// use decss_graphs::fingerprint::{graph_fingerprint, FingerprintAcc};
/// use decss_graphs::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1, 2), (1, 2, 4)]).unwrap();
/// let mut acc = FingerprintAcc::of(&g);
/// acc.remove_edge(1, 2, 4);
/// acc.add_edge(1, 2, 9);
/// let h = Graph::from_edges(3, [(0, 1, 2), (1, 2, 9)]).unwrap();
/// assert_eq!(acc.value(), graph_fingerprint(&h));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FingerprintAcc {
    n: u64,
    m: u64,
    sum: u64,
}

impl FingerprintAcc {
    /// An accumulator for an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        FingerprintAcc { n: n as u64, m: 0, sum: 0 }
    }

    /// The accumulator of a whole graph (`O(m)`).
    pub fn of(g: &Graph) -> Self {
        let mut acc = FingerprintAcc::new(g.n());
        for (_, e) in g.edges() {
            acc.add_edge(e.u.0, e.v.0, e.weight);
        }
        acc
    }

    /// Folds in a new edge.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32, weight: Weight) {
        self.sum = self.sum.wrapping_add(edge_hash(u, v, weight));
        self.m += 1;
    }

    /// Removes an edge previously folded in (by its exact triple).
    #[inline]
    pub fn remove_edge(&mut self, u: u32, v: u32, weight: Weight) {
        self.sum = self.sum.wrapping_sub(edge_hash(u, v, weight));
        self.m -= 1;
    }

    /// Replaces the weight of an edge previously folded in.
    #[inline]
    pub fn reweight_edge(&mut self, u: u32, v: u32, old: Weight, new: Weight) {
        self.sum = self
            .sum
            .wrapping_sub(edge_hash(u, v, old))
            .wrapping_add(edge_hash(u, v, new));
    }

    /// Convenience: removes edge `id` of `g` by looking up its triple.
    pub fn remove_edge_of(&mut self, g: &Graph, id: EdgeId) {
        let e = g.edge(id);
        self.remove_edge(e.u.0, e.v.0, e.weight);
    }

    /// The fingerprint value.
    #[inline]
    pub fn value(&self) -> u64 {
        mix(mix(self.sum ^ mix(self.n)) ^ mix(self.m ^ 0xD6E8_FEB8_6659_FD93))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_of_edge_order_and_orientation() {
        let a = Graph::from_edges(4, [(0, 1, 5), (1, 2, 6), (2, 3, 7)]).unwrap();
        let b = Graph::from_edges(4, [(3, 2, 7), (0, 1, 5), (2, 1, 6)]).unwrap();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn sensitive_to_n_m_weight_and_endpoints() {
        let base = Graph::from_edges(4, [(0, 1, 5), (1, 2, 6)]).unwrap();
        let fp = graph_fingerprint(&base);
        let more_n = Graph::from_edges(5, [(0, 1, 5), (1, 2, 6)]).unwrap();
        let more_m = Graph::from_edges(4, [(0, 1, 5), (1, 2, 6), (2, 3, 1)]).unwrap();
        let rew = Graph::from_edges(4, [(0, 1, 5), (1, 2, 7)]).unwrap();
        let moved = Graph::from_edges(4, [(0, 1, 5), (1, 3, 6)]).unwrap();
        for other in [&more_n, &more_m, &rew, &moved] {
            assert_ne!(fp, graph_fingerprint(other));
        }
    }

    #[test]
    fn parallel_edges_are_counted_with_multiplicity() {
        let single = Graph::from_edges(2, [(0, 1, 3)]).unwrap();
        let double = Graph::from_edges(2, [(0, 1, 3), (0, 1, 3)]).unwrap();
        assert_ne!(graph_fingerprint(&single), graph_fingerprint(&double));
    }

    #[test]
    fn incremental_updates_match_from_scratch() {
        // A deterministic pseudo-random update sequence: start from a
        // cycle, interleave reweights, deletes, and inserts, and check
        // the accumulator against a from-scratch fingerprint each step.
        let n = 12u32;
        let mut edges: Vec<(u32, u32, Weight)> =
            (0..n).map(|i| (i, (i + 1) % n, 1 + i as Weight)).collect();
        let g = Graph::from_edges(n as usize, edges.iter().copied()).unwrap();
        let mut acc = FingerprintAcc::of(&g);
        let mut state = 0xABCD_1234_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for step in 0..200 {
            match next() % 3 {
                0 => {
                    // reweight a random edge
                    let k = next() as usize % edges.len();
                    let (u, v, old) = edges[k];
                    let new = 1 + (next() % 50) as Weight;
                    acc.reweight_edge(u, v, old, new);
                    edges[k].2 = new;
                }
                1 if edges.len() > 3 => {
                    let k = next() as usize % edges.len();
                    let (u, v, w) = edges.swap_remove(k);
                    acc.remove_edge(u, v, w);
                }
                _ => {
                    let u = next() % n;
                    let v = (u + 1 + next() % (n - 1)) % n;
                    let w = 1 + (next() % 50) as Weight;
                    acc.add_edge(u, v, w);
                    edges.push((u, v, w));
                }
            }
            let fresh = Graph::from_edges(n as usize, edges.iter().copied()).unwrap();
            assert_eq!(acc.value(), graph_fingerprint(&fresh), "step {step}");
        }
    }
}
