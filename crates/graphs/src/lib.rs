#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
//! Weighted-graph substrate for the `decss` workspace.
//!
//! This crate provides everything the distributed 2-ECSS algorithms need
//! from a graph library:
//!
//! * [`Graph`] — an undirected weighted multigraph with stable edge
//!   identities ([`EdgeId`]) and vertex identities ([`VertexId`]),
//! * [`GraphBuilder`] — incremental construction with validation,
//! * generators for the graph families used in the experiments
//!   ([`gen`]), all seeded and deterministic,
//! * verification oracles ([`algo`]): BFS/diameter, DFS, bridges and
//!   2-edge-connectivity, connectivity, and a centralized minimum
//!   spanning tree used both as a substrate and as a test oracle.
//!
//! # Example
//!
//! ```
//! use decss_graphs::{GraphBuilder, algo};
//!
//! // A 4-cycle is 2-edge-connected; removing one edge leaves it connected.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 5)?;
//! b.add_edge(1, 2, 5)?;
//! b.add_edge(2, 3, 5)?;
//! b.add_edge(3, 0, 5)?;
//! let g = b.build()?;
//! assert!(algo::is_two_edge_connected(&g));
//! # Ok::<(), decss_graphs::GraphError>(())
//! ```

pub mod algo;
pub mod builder;
pub mod edge;
pub mod fingerprint;
pub mod gen;
pub mod graph;
pub mod io;
pub mod weight;

pub use builder::GraphBuilder;
pub use edge::{Edge, EdgeId, VertexId};
pub use graph::{Graph, GraphError};
pub use weight::Weight;
