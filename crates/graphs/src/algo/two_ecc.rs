//! 2-edge-connected components: the blocks left after removing all
//! bridges. Used by the failure-analysis examples and as a richer oracle
//! than the boolean [`is_two_edge_connected`](super::is_two_edge_connected).

use crate::algo::bridges::bridges_in_subgraph;
use crate::algo::connectivity::UnionFind;
use crate::edge::{EdgeId, VertexId};
use crate::graph::Graph;

/// The 2-edge-connected components of a subgraph.
#[derive(Clone, Debug)]
pub struct TwoEccComponents {
    /// Component index per vertex (isolated vertices get their own).
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// The bridges that separate them.
    pub bridges: Vec<EdgeId>,
}

impl TwoEccComponents {
    /// Whether `u` and `v` are 2-edge-connected to each other (two
    /// edge-disjoint paths exist between them).
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }
}

/// Computes the 2-edge-connected components of the subgraph formed by
/// `keep` (mask over all edges).
pub fn two_ecc_components(g: &Graph, keep: &[bool]) -> TwoEccComponents {
    let bridges = bridges_in_subgraph(g, keep);
    let is_bridge: std::collections::HashSet<EdgeId> = bridges.iter().copied().collect();
    let mut uf = UnionFind::new(g.n());
    for (id, e) in g.edges() {
        if keep[id.index()] && !is_bridge.contains(&id) {
            uf.union(e.u.index(), e.v.index());
        }
    }
    let mut label = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    let mut component = vec![0u32; g.n()];
    for v in 0..g.n() {
        let r = uf.find(v);
        if label[r] == u32::MAX {
            label[r] = count;
            count += 1;
        }
        component[v] = label[r];
    }
    TwoEccComponents { component, count: count as usize, bridges }
}

/// Convenience: components of the whole graph.
pub fn two_ecc_components_of(g: &Graph) -> TwoEccComponents {
    two_ecc_components(g, &vec![true; g.m()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn barbell_splits_into_two_blocks() {
        // Two triangles joined by a bridge.
        let g = Graph::from_edges(
            6,
            [
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1), // bridge
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        )
        .unwrap();
        let c = two_ecc_components_of(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.bridges, vec![EdgeId(3)]);
        assert!(c.same(VertexId(0), VertexId(2)));
        assert!(c.same(VertexId(3), VertexId(5)));
        assert!(!c.same(VertexId(0), VertexId(3)));
    }

    #[test]
    fn two_ec_graph_is_one_block() {
        let g = gen::gnp_two_ec(20, 0.15, 10, 2);
        let c = two_ecc_components_of(&g);
        assert_eq!(c.count, 1);
        assert!(c.bridges.is_empty());
    }

    #[test]
    fn path_is_all_singletons() {
        let g = gen::path(5);
        let c = two_ecc_components_of(&g);
        assert_eq!(c.count, 5);
        assert_eq!(c.bridges.len(), 4);
    }

    #[test]
    fn same_relation_matches_two_disjoint_paths_property() {
        // In any graph, u ~ v in 2ECC iff removing any single edge leaves
        // them connected. Check against that definition on small graphs.
        let g = gen::sparse_two_ec(10, 3, 5, 7);
        // Remove one edge to create bridges.
        let mut keep = vec![true; g.m()];
        keep[0] = false;
        let c = two_ecc_components(&g, &keep);
        for u in g.vertices() {
            for v in g.vertices() {
                if u >= v {
                    continue;
                }
                // Definition: same block iff for every single deleted
                // edge they stay connected (within the kept subgraph).
                let mut robust = true;
                for drop in g.edge_ids() {
                    if !keep[drop.index()] {
                        continue;
                    }
                    let alive = g.edge_ids().filter(|&e| keep[e.index()] && e != drop);
                    let labels = crate::algo::component_labels(&g, alive);
                    if labels[u.index()] != labels[v.index()] {
                        robust = false;
                        break;
                    }
                }
                // Also need them connected at all.
                let labels =
                    crate::algo::component_labels(&g, g.edge_ids().filter(|&e| keep[e.index()]));
                let connected = labels[u.index()] == labels[v.index()];
                assert_eq!(c.same(u, v), robust && connected, "pair {u},{v}");
            }
        }
    }
}
