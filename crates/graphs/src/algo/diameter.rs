//! Hop diameter and eccentricity.
//!
//! The round complexities in the paper are stated in terms of the hop
//! diameter `D` of the communication network, so the experiment harness
//! computes exact diameters (all-pairs BFS; fine at experiment sizes).

use crate::algo::bfs::bfs_distances;
use crate::edge::VertexId;
use crate::graph::Graph;

/// Largest hop distance from `v` to any reachable vertex.
///
/// # Panics
///
/// Panics if the graph is disconnected (eccentricity is undefined).
pub fn eccentricity(g: &Graph, v: VertexId) -> u32 {
    bfs_distances(g, v)
        .into_iter()
        .map(|d| d.expect("eccentricity requires a connected graph"))
        .max()
        .unwrap_or(0)
}

/// Exact hop diameter of a connected graph.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn diameter(g: &Graph) -> u32 {
    g.vertices().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_of_path() {
        let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1, 1))).unwrap();
        assert_eq!(diameter(&g), 4);
        assert_eq!(eccentricity(&g, VertexId(2)), 2);
    }

    #[test]
    fn diameter_of_cycle() {
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6, 1))).unwrap();
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn diameter_of_single_vertex() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn diameter_panics_when_disconnected() {
        let g = Graph::from_edges(3, [(0, 1, 1)]).unwrap();
        let _ = diameter(&g);
    }
}
