//! Breadth-first search: distances and BFS trees.

use crate::edge::{EdgeId, VertexId};
use crate::graph::Graph;
use std::collections::VecDeque;

/// A BFS tree rooted at some vertex, with hop distances.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root of the search.
    pub root: VertexId,
    /// `parent[v]` is `None` for the root and for unreachable vertices.
    pub parent: Vec<Option<VertexId>>,
    /// Tree edge to the parent, aligned with `parent`.
    pub parent_edge: Vec<Option<EdgeId>>,
    /// Hop distance from the root; `None` if unreachable.
    pub dist: Vec<Option<u32>>,
}

impl BfsTree {
    /// Maximum distance of any reachable vertex: the BFS depth.
    pub fn depth(&self) -> u32 {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Whether every vertex is reachable from the root.
    pub fn spans_all(&self) -> bool {
        self.dist.iter().all(|d| d.is_some())
    }

    /// The tree edges (one per non-root reachable vertex).
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.parent_edge.iter().flatten().copied()
    }
}

/// Runs BFS from `root`, returning the tree and distances.
pub fn bfs_tree(g: &Graph, root: VertexId) -> BfsTree {
    let n = g.n();
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut dist = vec![None; n];
    dist[root.index()] = Some(0);
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued vertices have distances");
        for &(eid, w) in g.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                parent[w.index()] = Some(v);
                parent_edge[w.index()] = Some(eid);
                queue.push_back(w);
            }
        }
    }
    BfsTree { root, parent, parent_edge, dist }
}

/// Hop distances from `root`; `None` for unreachable vertices.
pub fn bfs_distances(g: &Graph, root: VertexId) -> Vec<Option<u32>> {
    bfs_tree(g, root).dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let t = bfs_tree(&g, VertexId(0));
        assert_eq!(t.dist[3], Some(3));
        assert_eq!(t.depth(), 3);
        assert!(t.spans_all());
        assert_eq!(t.tree_edges().count(), 3);
        assert_eq!(t.parent[1], Some(VertexId(0)));
    }

    #[test]
    fn bfs_detects_unreachable() {
        let g = Graph::from_edges(3, [(0, 1, 1)]).unwrap();
        let t = bfs_tree(&g, VertexId(0));
        assert!(!t.spans_all());
        assert_eq!(t.dist[2], None);
        assert_eq!(bfs_distances(&g, VertexId(0))[2], None);
    }

    #[test]
    fn bfs_prefers_shortest_hop_path() {
        // 0-1-2 and direct 0-2: dist(2) must be 1.
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 100)]).unwrap();
        let t = bfs_tree(&g, VertexId(0));
        assert_eq!(t.dist[2], Some(1));
    }
}
