//! Centralized graph algorithms used as substrates and verification
//! oracles: BFS/diameter, DFS, bridges/2-edge-connectivity, connectivity
//! via union-find, and minimum spanning trees.

mod bfs;
mod bridges;
mod connectivity;
mod diameter;
mod mst;
mod two_ecc;

pub use bfs::{bfs_distances, bfs_tree, BfsTree};
pub use bridges::{bridges, bridges_in_subgraph, is_two_edge_connected, two_edge_connected_in};
pub use connectivity::{component_labels, is_connected, is_connected_subgraph, UnionFind};
pub use diameter::{diameter, eccentricity};
pub use mst::{minimum_spanning_tree, MstError};
pub use two_ecc::{two_ecc_components, two_ecc_components_of, TwoEccComponents};
