//! Connectivity checks and a union-find used across the workspace.

use crate::edge::{EdgeId, VertexId};
use crate::graph::Graph;

/// Disjoint-set union with path compression and union by rank.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns whether they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }
}

/// Whether the whole graph is connected.
pub fn is_connected(g: &Graph) -> bool {
    let mut uf = UnionFind::new(g.n());
    for (_, e) in g.edges() {
        uf.union(e.u.index(), e.v.index());
    }
    uf.components() == 1
}

/// Whether the subgraph formed by `edges` spans and connects all vertices.
pub fn is_connected_subgraph(g: &Graph, edges: impl IntoIterator<Item = EdgeId>) -> bool {
    let mut uf = UnionFind::new(g.n());
    for id in edges {
        let e = g.edge(id);
        uf.union(e.u.index(), e.v.index());
    }
    uf.components() == 1
}

/// Component label for every vertex under the given edge set (labels are
/// the minimum vertex id in each component).
pub fn component_labels(g: &Graph, edges: impl IntoIterator<Item = EdgeId>) -> Vec<VertexId> {
    let mut uf = UnionFind::new(g.n());
    for id in edges {
        let e = g.edge(id);
        uf.union(e.u.index(), e.v.index());
    }
    let mut min_label = vec![u32::MAX; g.n()];
    for v in 0..g.n() {
        let r = uf.find(v);
        min_label[r] = min_label[r].min(v as u32);
    }
    (0..g.n()).map(|v| VertexId(min_label[uf.find(v)])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn connected_checks() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        assert!(is_connected(&g));
        assert!(!is_connected_subgraph(&g, [EdgeId(0)]));
        assert!(is_connected_subgraph(&g, [EdgeId(0), EdgeId(1)]));
    }

    #[test]
    fn component_labels_are_minima() {
        let g = Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let labels = component_labels(&g, g.edge_ids());
        assert_eq!(labels[0], VertexId(0));
        assert_eq!(labels[1], VertexId(0));
        assert_eq!(labels[2], VertexId(2));
        assert_eq!(labels[3], VertexId(2));
    }
}
