//! Centralized minimum spanning tree (Kruskal) with deterministic
//! tie-breaking.
//!
//! The distributed algorithms of the paper start from an MST computed by
//! Kutten–Peleg in `O(D + sqrt(n) log* n)` rounds. Logically, the tree is
//! unique once ties are broken by edge id, which is what both this oracle
//! and the message-level Borůvka protocol in `decss-congest` do — so they
//! provably produce the same tree and the round ledger can charge the
//! Kutten–Peleg cost while the logic uses this oracle.

use crate::algo::connectivity::UnionFind;
use crate::edge::EdgeId;
use crate::graph::Graph;
use std::fmt;

/// Error returned when the graph has no spanning tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MstError;

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph is disconnected: no spanning tree exists")
    }
}

impl std::error::Error for MstError {}

/// Computes the minimum spanning tree, breaking weight ties by edge id.
///
/// Returns the tree's edge ids sorted by id.
///
/// # Errors
///
/// Returns [`MstError`] if the graph is disconnected.
pub fn minimum_spanning_tree(g: &Graph) -> Result<Vec<EdgeId>, MstError> {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_by_key(|&id| (g.weight(id), id));
    let mut uf = UnionFind::new(g.n());
    let mut tree = Vec::with_capacity(g.n().saturating_sub(1));
    for id in order {
        let e = g.edge(id);
        if uf.union(e.u.index(), e.v.index()) {
            tree.push(id);
            if tree.len() + 1 == g.n() {
                break;
            }
        }
    }
    if tree.len() + 1 != g.n() {
        return Err(MstError);
    }
    tree.sort_unstable();
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connectivity::is_connected_subgraph;

    #[test]
    fn mst_of_triangle_drops_heaviest() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (2, 0, 3)]).unwrap();
        let t = minimum_spanning_tree(&g).unwrap();
        assert_eq!(t, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn mst_breaks_ties_by_edge_id() {
        // Square with all-equal weights: the first three edges win.
        let g = Graph::from_edges(4, [(0, 1, 5), (1, 2, 5), (2, 3, 5), (3, 0, 5)]).unwrap();
        let t = minimum_spanning_tree(&g).unwrap();
        assert_eq!(t, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn mst_spans() {
        let g = Graph::from_edges(
            5,
            [(0, 1, 9), (0, 2, 1), (1, 2, 2), (1, 3, 7), (2, 4, 3), (3, 4, 4)],
        )
        .unwrap();
        let t = minimum_spanning_tree(&g).unwrap();
        assert_eq!(t.len(), 4);
        assert!(is_connected_subgraph(&g, t.iter().copied()));
        assert_eq!(g.weight_of(t), 1 + 2 + 3 + 4);
    }

    #[test]
    fn mst_fails_when_disconnected() {
        let g = Graph::from_edges(3, [(0, 1, 1)]).unwrap();
        assert_eq!(minimum_spanning_tree(&g), Err(MstError));
        assert!(!format!("{MstError}").is_empty());
    }

    #[test]
    fn mst_of_single_vertex_is_empty() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(minimum_spanning_tree(&g).unwrap(), vec![]);
    }
}
