//! Bridge finding and 2-edge-connectivity tests (Tarjan's low-link DFS,
//! iterative to survive deep recursion on path-like graphs).
//!
//! These are the *verification oracles* of the workspace: every 2-ECSS
//! the distributed algorithms output is checked to be spanning and
//! bridgeless with this module.

use crate::edge::{EdgeId, VertexId};
use crate::graph::Graph;

/// Finds all bridges of the subgraph induced by `keep` (on all vertices).
///
/// An edge is a bridge if its removal disconnects the component that
/// contains it. Parallel edges are handled correctly: two parallel edges
/// are never bridges.
pub fn bridges_in_subgraph(g: &Graph, keep: &[bool]) -> Vec<EdgeId> {
    assert_eq!(keep.len(), g.m(), "keep mask must cover all edges");
    let n = g.n();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut out = Vec::new();

    // Iterative DFS: stack entries are (vertex, incident-list cursor,
    // edge id used to enter the vertex).
    let mut stack: Vec<(VertexId, usize, Option<EdgeId>)> = Vec::new();
    for start in g.vertices() {
        if disc[start.index()] != u32::MAX {
            continue;
        }
        disc[start.index()] = timer;
        low[start.index()] = timer;
        timer += 1;
        stack.push((start, 0, None));
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let (v, cursor, entry) = stack[top];
            let incident = g.neighbors(v);
            if cursor < incident.len() {
                stack[top].1 += 1;
                let (eid, w) = incident[cursor];
                if !keep[eid.index()] {
                    continue;
                }
                // Skip only the exact edge used to enter v, so that a
                // parallel edge still provides a back-edge.
                if Some(eid) == entry {
                    continue;
                }
                if disc[w.index()] == u32::MAX {
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    timer += 1;
                    stack.push((w, 0, Some(eid)));
                } else {
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        out.push(entry.expect("non-root has an entry edge"));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// All bridges of the full graph.
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    bridges_in_subgraph(g, &vec![true; g.m()])
}

/// Whether the full graph is connected and bridgeless (2-edge-connected).
///
/// A single-vertex graph counts as 2-edge-connected.
pub fn is_two_edge_connected(g: &Graph) -> bool {
    two_edge_connected_in(g, g.edge_ids())
}

/// Whether the subgraph formed by `edges` is spanning, connected, and
/// bridgeless.
pub fn two_edge_connected_in(g: &Graph, edges: impl IntoIterator<Item = EdgeId>) -> bool {
    let mut keep = vec![false; g.m()];
    for id in edges {
        keep[id.index()] = true;
    }
    if !super::connectivity::is_connected_subgraph(g, g.edge_ids().filter(|id| keep[id.index()])) {
        return g.n() == 1;
    }
    bridges_in_subgraph(g, &keep).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_all_bridges() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        assert_eq!(bridges(&g).len(), 3);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]).unwrap();
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn barbell_has_one_bridge() {
        // Two triangles joined by edge 3 (index into list below).
        let g = Graph::from_edges(
            6,
            [
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (2, 3, 1), // the bridge
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        )
        .unwrap();
        assert_eq!(bridges(&g), vec![EdgeId(3)]);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let g = Graph::from_edges(2, [(0, 1, 1), (0, 1, 2)]).unwrap();
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn single_parallel_edge_is_a_bridge() {
        let g = Graph::from_edges(2, [(0, 1, 1)]).unwrap();
        assert_eq!(bridges(&g), vec![EdgeId(0)]);
    }

    #[test]
    fn disconnected_subgraph_is_not_2ecc() {
        let g = Graph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]).unwrap();
        assert!(!two_edge_connected_in(&g, [EdgeId(0), EdgeId(1)]));
        assert!(two_edge_connected_in(&g, g.edge_ids()));
    }

    #[test]
    fn bridges_in_components() {
        // Two disjoint paths: every edge is a bridge.
        let g = Graph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert_eq!(bridges(&g).len(), 2);
    }

    #[test]
    fn single_vertex_is_2ecc() {
        let g = Graph::from_edges(1, []).unwrap();
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 200_000u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let g = Graph::from_edges(n as usize, edges).unwrap();
        assert_eq!(bridges(&g).len(), n as usize - 1);
    }
}
