//! Vertex and edge identities.
//!
//! Both the CONGEST simulator and the TAP machinery need *stable* edge
//! identities (an edge keeps its id through tree/non-tree classification,
//! virtualization, and round accounting), so edges are referred to by
//! [`EdgeId`] newtypes rather than `(u, v)` pairs, and vertices by
//! [`VertexId`].

use crate::weight::Weight;
use std::fmt;

/// Identifier of a vertex: a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// Identifier of an edge: a dense index in `0..m`, stable for the lifetime
/// of the [`Graph`](crate::Graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for indexing dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(e: u32) -> Self {
        EdgeId(e)
    }
}

/// An undirected weighted edge between two distinct vertices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// One endpoint (the smaller id by construction).
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Non-negative integer weight.
    pub weight: Weight,
}

impl Edge {
    /// Creates an edge, normalizing endpoint order so `u <= v`.
    pub fn new(u: VertexId, v: VertexId, weight: Weight) -> Self {
        if u <= v {
            Edge { u, v, weight }
        } else {
            Edge { u: v, v: u, weight }
        }
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn has_endpoint(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(VertexId(7), VertexId(2), 10);
        assert_eq!(e.u, VertexId(2));
        assert_eq!(e.v, VertexId(7));
        assert_eq!(e.weight, 10);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(4), 3);
        assert_eq!(e.other(VertexId(1)), VertexId(4));
        assert_eq!(e.other(VertexId(4)), VertexId(1));
        assert!(e.has_endpoint(VertexId(1)));
        assert!(!e.has_endpoint(VertexId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(4), 3);
        let _ = e.other(VertexId(9));
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", VertexId(3)), "v3");
        assert_eq!(format!("{:?}", EdgeId(12)), "e12");
        assert_eq!(VertexId::from(5u32).index(), 5);
        assert_eq!(EdgeId::from(5u32).index(), 5);
    }
}
