//! Edge weights.
//!
//! The paper assumes polynomially-bounded integer weights (`W_max <=
//! poly(n)`), which is what makes `O(log n)`-bit messages able to carry a
//! weight. We use `u64` and provide a saturating sum helper so that total
//! weights of edge sets cannot overflow silently.

/// An edge weight: a non-negative integer, assumed `<= poly(n)`.
pub type Weight = u64;

/// Sums the weights of an iterator, panicking on (absurd) overflow.
///
/// # Panics
///
/// Panics if the sum exceeds `u64::MAX`, which cannot happen for the
/// polynomially-bounded weights the model assumes.
pub fn total<I: IntoIterator<Item = Weight>>(weights: I) -> Weight {
    weights
        .into_iter()
        .fold(0u64, |acc, w| acc.checked_add(w).expect("weight sum overflow"))
}

/// `weight / lower_bound` — the certified approximation ratio every
/// solver result reports: an upper bound on the achieved ratio, computed
/// without knowing the true optimum.
///
/// A non-positive lower bound certifies nothing, so the ratio pins to
/// `1.0` (the convention every result type shared before this helper
/// unified them: an all-zero-weight instance is trivially optimal).
pub fn certified_ratio(weight: f64, lower_bound: f64) -> f64 {
    if lower_bound <= 0.0 {
        1.0
    } else {
        weight / lower_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums() {
        assert_eq!(total([1, 2, 3]), 6);
        assert_eq!(total(std::iter::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn total_panics_on_overflow() {
        let _ = total([u64::MAX, 1]);
    }
}
