//! The core undirected weighted graph type.

use crate::edge::{Edge, EdgeId, VertexId};
use crate::weight::Weight;
use std::fmt;

/// Errors produced when constructing or mutating a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An endpoint index was `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop was requested; the model works on simple graphs.
    SelfLoop {
        /// The vertex at both endpoints.
        vertex: VertexId,
    },
    /// A graph with zero vertices was requested.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at {vertex} is not allowed")
            }
            GraphError::EmptyGraph => write!(f, "graph must have at least one vertex"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted multigraph with `n` vertices and stable edge ids.
///
/// Vertices are the dense range `0..n`; edges are stored in insertion
/// order and identified by [`EdgeId`]. Parallel edges are permitted (they
/// arise naturally in network-design inputs: two links with different
/// costs between the same routers), self-loops are not.
///
/// # Example
///
/// ```
/// use decss_graphs::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 2)?;
/// b.add_edge(1, 2, 4)?;
/// let g: Graph = b.build()?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.total_weight(), 6);
/// # Ok::<(), decss_graphs::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR offsets: vertex `v`'s ports live at `ports[offsets[v] as usize
    /// .. offsets[v + 1] as usize]`. Length `n + 1`, `offsets[n] == 2m`.
    offsets: Vec<u32>,
    /// One contiguous arena of `(edge id, other endpoint)` ports for all
    /// vertices, each vertex's run in edge-insertion order. Layers above
    /// (the round simulator's `ports`, BFS scans, fragment probes) borrow
    /// slices of this arena directly, so a whole-graph adjacency sweep is
    /// one linear pass over memory.
    ports: Vec<(EdgeId, VertexId)>,
}

impl Graph {
    /// Creates a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, or
    /// an edge is a self-loop.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32, Weight)>,
    ) -> Result<Self, GraphError> {
        let mut builder = crate::builder::GraphBuilder::new(n);
        for (u, v, w) in edges {
            builder.add_edge(u, v, w)?;
        }
        builder.build()
    }

    pub(crate) fn from_parts(n: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        // u32 offsets must hold 2m; the Vec<Vec<..>> representation this
        // replaced had no such cap, so make the new limit loud rather
        // than wrapping in release builds.
        assert!(
            edges.len() <= (u32::MAX / 2) as usize,
            "graph exceeds the CSR edge capacity of 2^31 edges: m = {}",
            edges.len()
        );
        // Counting sort into CSR: degree pass, prefix sum, then a fill
        // pass in edge-id order so every vertex's ports keep insertion
        // order (the invariant the simulator's port numbering relies on).
        let mut offsets = vec![0u32; n + 1];
        for e in &edges {
            offsets[e.u.index() + 1] += 1;
            offsets[e.v.index() + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut ports = vec![(EdgeId(0), VertexId(0)); 2 * edges.len()];
        let mut cursor = offsets.clone();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            ports[cursor[e.u.index()] as usize] = (id, e.v);
            cursor[e.u.index()] += 1;
            ports[cursor[e.v.index()] as usize] = (id, e.u);
            cursor[e.v.index()] += 1;
        }
        Ok(Graph { n, edges, offsets, ports })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Weight of the edge with the given id.
    #[inline]
    pub fn weight(&self, id: EdgeId) -> Weight {
        self.edges[id.index()].weight
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n as u32).map(VertexId)
    }

    /// Iterator over `(EdgeId, Edge)` pairs in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, &e)| (EdgeId(i as u32), e))
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Incident edges of `v` as `(EdgeId, neighbour)` pairs, in edge
    /// insertion order — a borrowed slice into the graph's flat CSR
    /// port arena, so it is free to take and cheap to scan.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(EdgeId, VertexId)] {
        let i = v.index();
        &self.ports[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Alias for [`Graph::neighbors`] (historical name).
    #[inline]
    pub fn incident(&self, v: VertexId) -> &[(EdgeId, VertexId)] {
        self.neighbors(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The whole CSR port arena: every vertex's `(edge, neighbour)` run
    /// back to back, vertex by vertex. One linear scan of this slice
    /// visits each undirected edge exactly twice; use [`Graph::neighbors`]
    /// for a single vertex's run.
    #[inline]
    pub fn port_arena(&self) -> &[(EdgeId, VertexId)] {
        &self.ports
    }

    /// Replaces the weight of edge `id` in place.
    ///
    /// `O(1)`: weights live only in the edge table — the CSR port arena
    /// stores `(edge, neighbour)` pairs and needs no rebuild. This is
    /// what makes reweight-only deltas cheap for the incremental solve
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn set_weight(&mut self, id: EdgeId, weight: Weight) {
        self.edges[id.index()].weight = weight;
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        crate::weight::total(self.edges.iter().map(|e| e.weight))
    }

    /// Sum of weights of a subset of edges.
    pub fn weight_of(&self, ids: impl IntoIterator<Item = EdgeId>) -> Weight {
        crate::weight::total(ids.into_iter().map(|id| self.weight(id)))
    }

    /// The subgraph containing only `keep` edges, on the same vertex set.
    pub fn edge_subgraph(&self, keep: impl IntoIterator<Item = EdgeId>) -> SubgraphView<'_> {
        let mut mask = vec![false; self.m()];
        for id in keep {
            mask[id.index()] = true;
        }
        SubgraphView { graph: self, mask }
    }

    /// Largest edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Returns a copy of this graph with every edge weight replaced by 1.
    ///
    /// Used by the unweighted-TAP experiments.
    pub fn unweighted(&self) -> Graph {
        let edges = self.edges.iter().map(|e| Edge { weight: 1, ..*e }).collect();
        Graph::from_parts(self.n, edges).expect("same structure is valid")
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph(n={}, m={})", self.n, self.m())?;
        for (id, e) in self.edges() {
            writeln!(f, "  {id}: {} -- {} (w={})", e.u, e.v, e.weight)?;
        }
        Ok(())
    }
}

/// A borrowed view of a graph restricted to a subset of its edges.
///
/// Produced by [`Graph::edge_subgraph`]; used by the verification oracles
/// to check properties of computed subgraphs without copying.
pub struct SubgraphView<'a> {
    graph: &'a Graph,
    mask: Vec<bool>,
}

impl<'a> SubgraphView<'a> {
    /// The underlying graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Whether edge `id` is part of the view.
    #[inline]
    pub fn contains(&self, id: EdgeId) -> bool {
        self.mask[id.index()]
    }

    /// Incident edges of `v` restricted to the view.
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, VertexId)> + '_ {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |(id, _)| self.mask[id.index()])
    }

    /// Number of edges in the view.
    pub fn m(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Total weight of the view's edges.
    pub fn total_weight(&self) -> Weight {
        crate::weight::total(
            self.graph
                .edges()
                .filter(|(id, _)| self.mask[id.index()])
                .map(|(_, e)| e.weight),
        )
    }
}

impl fmt::Debug for SubgraphView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubgraphView({} of {} edges)", self.m(), self.graph.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (2, 0, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight(EdgeId(1)), 2);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_weight(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.vertices().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
    }

    #[test]
    fn incident_lists_are_consistent() {
        let g = triangle();
        for v in g.vertices() {
            for &(id, w) in g.neighbors(v) {
                let e = g.edge(id);
                assert!(e.has_endpoint(v));
                assert_eq!(e.other(v), w);
            }
        }
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let g = Graph::from_edges(2, [(0, 1, 1), (0, 1, 7)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(2, [(1, 1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: VertexId(1) });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(2, [(0, 5, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn empty_graph_rejected() {
        let err = Graph::from_edges(0, []).unwrap_err();
        assert_eq!(err, GraphError::EmptyGraph);
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn subgraph_view_filters_edges() {
        let g = triangle();
        let view = g.edge_subgraph([EdgeId(0), EdgeId(2)]);
        assert_eq!(view.m(), 2);
        assert!(view.contains(EdgeId(0)));
        assert!(!view.contains(EdgeId(1)));
        assert_eq!(view.total_weight(), 4);
        assert_eq!(view.incident(VertexId(1)).count(), 1);
    }

    #[test]
    fn unweighted_copy() {
        let g = triangle().unweighted();
        assert_eq!(g.total_weight(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn weight_of_subset() {
        let g = triangle();
        assert_eq!(g.weight_of([EdgeId(0), EdgeId(2)]), 4);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", triangle()).contains("Graph(n=3, m=3)"));
    }
}
