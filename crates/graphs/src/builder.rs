//! Incremental graph construction with validation.

use crate::edge::{Edge, VertexId};
use crate::graph::{Graph, GraphError};
use crate::weight::Weight;

/// Builder for [`Graph`], validating each edge as it is added.
///
/// # Example
///
/// ```
/// use decss_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(0, 1, 10)?;
/// let g = b.build()?;
/// assert_eq!(g.m(), 1);
/// # Ok::<(), decss_graphs::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Adds an undirected edge `{u, v}` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::VertexOutOfRange`] if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: u32, v: u32, weight: Weight) -> Result<&mut Self, GraphError> {
        let (u, v) = (VertexId(u), VertexId(v));
        for &x in &[u, v] {
            if x.index() >= self.n {
                return Err(GraphError::VertexOutOfRange { vertex: x, n: self.n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(Edge::new(u, v, weight));
        Ok(self)
    }

    /// Adds an edge only if no parallel edge between the same endpoints
    /// exists yet; returns whether it was added.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`].
    pub fn add_edge_dedup(&mut self, u: u32, v: u32, weight: Weight) -> Result<bool, GraphError> {
        let e = Edge::new(VertexId(u), VertexId(v), weight);
        if self.edges.iter().any(|x| x.u == e.u && x.v == e.v) {
            return Ok(false);
        }
        self.add_edge(u, v, weight)?;
        Ok(true)
    }

    /// Whether an edge between `u` and `v` already exists (ignoring weight).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let e = Edge::new(VertexId(u), VertexId(v), 0);
        self.edges.iter().any(|x| x.u == e.u && x.v == e.v)
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn build(self) -> Result<Graph, GraphError> {
        Graph::from_parts(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 0, 1).is_err());
        assert!(b.add_edge(0, 3, 1).is_err());
        b.add_edge(0, 1, 1).unwrap();
        assert_eq!(b.m(), 1);
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(1, 2));
        let g = b.build().unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn dedup_skips_parallel() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_dedup(0, 1, 1).unwrap());
        assert!(!b.add_edge_dedup(1, 0, 9).unwrap());
        assert_eq!(b.m(), 1);
    }

    #[test]
    fn chaining_works() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap().add_edge(1, 2, 1).unwrap();
        assert_eq!(b.m(), 2);
    }
}
