//! The hardened HTTP front-end over a [`SolveService`].
//!
//! Architecture: one non-blocking accept loop feeds a **bounded**
//! connection pool — a [`JobQueue`] of accepted sockets drained by a
//! fixed set of connection workers. Beyond the bound, connections get
//! an immediate `503 busy` instead of queueing unboundedly (the
//! connection-level load shed; the job-level shed is the service's
//! non-blocking `try_submit` answered with `429 + retry_after_ms`).
//!
//! Robustness contract, pinned by `tests/server.rs` and the chaos
//! harness ([`crate::stress`]):
//!
//! * malformed input is answered with a structured 4xx/5xx and a JSON
//!   error body — never a panic, never a hang;
//! * a connection can hold the server for at most the read deadline
//!   (slow-loris cutoff → 408) plus the write deadline;
//! * every accepted connection is returned exactly once (no slot
//!   leaks — `accepted == conns_closed` after drain);
//! * drain is graceful: `/ready` flips to 503 first, the listener
//!   closes after a grace window, in-flight requests finish, the
//!   service runs its backlog dry, and the audit verdict comes back in
//!   the [`NetSummary`].

use crate::fault::{FaultClock, FaultPlan};
use crate::http::{self, HttpError, Limits, Parse, Request};
use crate::jobs::{self, FileAccess};
use crate::quota::{QuotaConfig, QuotaTable};
use decss_service::{DrainSummary, JobQueue, PushError, ServiceConfig, SolveService, SubmitError};
use decss_solver::json::escape;
use decss_solver::SolveError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Persistence knobs: where to restore warm state from at startup and
/// where (and how often) to snapshot it. All `None` by default — a
/// server without a snapshot path behaves exactly as before this tier
/// existed.
#[derive(Clone, Debug, Default)]
pub struct PersistConfig {
    /// Snapshot to restore at startup. Any [`decss_persist`] error is a
    /// *clean cold start* (logged to stderr), never a refusal to serve.
    pub restore_path: Option<PathBuf>,
    /// Where to write snapshots: on drain always, plus on the interval
    /// timer when [`snapshot_interval`](Self::snapshot_interval) is set.
    pub snapshot_path: Option<PathBuf>,
    /// Periodic snapshot cadence (requires a snapshot path). Interval
    /// snapshots are audit-consistent: in-flight jobs are excluded by
    /// the warm-state export.
    pub snapshot_interval: Option<Duration>,
}

impl PersistConfig {
    /// Whether any snapshot will ever be written.
    pub fn armed(&self) -> bool {
        self.snapshot_path.is_some()
    }
}

/// Knobs of the network tier (the solve pool itself is sized by the
/// [`ServiceConfig`] passed to [`NetServer::start`]).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Connection workers — at most this many connections are served
    /// concurrently; as many more may wait briefly in the pool queue.
    pub max_connections: usize,
    /// Total budget for reading one request (head + body). A client
    /// trickling bytes slower than this is cut off with 408 — the
    /// slow-loris guard.
    pub read_timeout: Duration,
    /// Budget for writing one response to a stalled reader.
    pub write_timeout: Duration,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: u32,
    /// Parser caps (head size, header count, body size).
    pub limits: Limits,
    /// Per-client token buckets; `None` disables quotas.
    pub quota: Option<QuotaConfig>,
    /// Injected faults (empty in production; the chaos harness's knob).
    pub fault: FaultPlan,
    /// `POST /jobs` retries a full queue this many times before marking
    /// the job shed (each attempt separated by `submit_retry_delay`) —
    /// a batch enumerates jobs faster than workers drain them, so a
    /// bounded wait keeps batches whole under their own load while
    /// `POST /solve` still sheds instantly.
    pub submit_retries: u32,
    /// Pause between `POST /jobs` submit retries.
    pub submit_retry_delay: Duration,
    /// Warm-state persistence (restore at start, snapshot on drain and
    /// on a timer). Default: fully disabled.
    pub persist: PersistConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive_requests: 64,
            limits: Limits::default(),
            quota: None,
            fault: FaultPlan::none(),
            submit_retries: 200,
            submit_retry_delay: Duration::from_millis(5),
            persist: PersistConfig::default(),
        }
    }
}

impl NetConfig {
    /// Sets the connection-worker count.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets the per-request read deadline (slow-loris cutoff).
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = d;
        self
    }

    /// Sets the per-response write deadline.
    pub fn write_timeout(mut self, d: Duration) -> Self {
        self.write_timeout = d;
        self
    }

    /// Enables per-client quotas.
    pub fn quota(mut self, q: QuotaConfig) -> Self {
        self.quota = Some(q);
        self
    }

    /// Installs a fault-injection plan (tests/chaos only).
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Restores warm state from `path` at startup (errors = cold start).
    pub fn restore_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist.restore_path = Some(path.into());
        self
    }

    /// Snapshots warm state to `path` on drain (and on the interval
    /// timer if one is set).
    pub fn snapshot_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist.snapshot_path = Some(path.into());
        self
    }

    /// Also snapshots every `interval` while serving.
    pub fn snapshot_interval(mut self, interval: Duration) -> Self {
        self.persist.snapshot_interval = Some(interval);
        self
    }
}

/// Monotonic counters of the tier, all updated lock-free.
#[derive(Default, Debug)]
pub struct NetCounters {
    /// Connections handed to the pool.
    pub accepted: AtomicU64,
    /// Connections refused with `503 busy` (pool full).
    pub refused_busy: AtomicU64,
    /// Connections dropped by an injected accept fault.
    pub faulted_accepts: AtomicU64,
    /// Requests fully parsed.
    pub requests: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses.
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Jobs shed with `429 overloaded` (queue full).
    pub shed: AtomicU64,
    /// Admissions denied with `429 quota_exceeded`.
    pub quota_denied: AtomicU64,
    /// Requests rejected by the parser.
    pub parse_errors: AtomicU64,
    /// Connections cut off at the read deadline (408).
    pub timeouts: AtomicU64,
    /// Connections the peer abandoned mid-request or mid-response.
    pub hangups: AtomicU64,
    /// Responses severed by an injected write fault.
    pub write_faults: AtomicU64,
    /// Connections currently inside a worker.
    pub conns_open: AtomicU64,
    /// Connections fully finished by a worker.
    pub conns_closed: AtomicU64,
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct NetSnapshot {
    /// See [`NetCounters::accepted`].
    pub accepted: u64,
    /// See [`NetCounters::refused_busy`].
    pub refused_busy: u64,
    /// See [`NetCounters::faulted_accepts`].
    pub faulted_accepts: u64,
    /// See [`NetCounters::requests`].
    pub requests: u64,
    /// See [`NetCounters::responses_2xx`].
    pub responses_2xx: u64,
    /// See [`NetCounters::responses_4xx`].
    pub responses_4xx: u64,
    /// See [`NetCounters::responses_5xx`].
    pub responses_5xx: u64,
    /// See [`NetCounters::shed`].
    pub shed: u64,
    /// See [`NetCounters::quota_denied`].
    pub quota_denied: u64,
    /// See [`NetCounters::parse_errors`].
    pub parse_errors: u64,
    /// See [`NetCounters::timeouts`].
    pub timeouts: u64,
    /// See [`NetCounters::hangups`].
    pub hangups: u64,
    /// See [`NetCounters::write_faults`].
    pub write_faults: u64,
    /// See [`NetCounters::conns_open`].
    pub conns_open: u64,
    /// See [`NetCounters::conns_closed`].
    pub conns_closed: u64,
}

impl NetCounters {
    fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_busy: self.refused_busy.load(Ordering::Relaxed),
            faulted_accepts: self.faulted_accepts.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quota_denied: self.quota_denied.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hangups: self.hangups.load(Ordering::Relaxed),
            write_faults: self.write_faults.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
        }
    }
}

impl NetSnapshot {
    /// Renders the counters as JSON object fields (no braces).
    pub fn json_fields(&self) -> String {
        format!(
            "\"accepted\": {}, \"refused_busy\": {}, \"faulted_accepts\": {}, \
             \"requests\": {}, \"responses_2xx\": {}, \"responses_4xx\": {}, \
             \"responses_5xx\": {}, \"shed\": {}, \"quota_denied\": {}, \
             \"parse_errors\": {}, \"timeouts\": {}, \"hangups\": {}, \
             \"write_faults\": {}, \"conns_open\": {}, \"conns_closed\": {}",
            self.accepted,
            self.refused_busy,
            self.faulted_accepts,
            self.requests,
            self.responses_2xx,
            self.responses_4xx,
            self.responses_5xx,
            self.shed,
            self.quota_denied,
            self.parse_errors,
            self.timeouts,
            self.hangups,
            self.write_faults,
            self.conns_open,
            self.conns_closed,
        )
    }
}

/// What a completed drain reports.
#[derive(Debug)]
pub struct NetSummary {
    /// Final network counters.
    pub net: NetSnapshot,
    /// The service's own drain verdict (final stats + log audit).
    pub service: DrainSummary,
    /// Jobs accepted per client id, sorted by id.
    pub clients: Vec<(String, u64)>,
    /// Outcome of the final snapshot written after the service drained:
    /// `None` when persistence is not armed, otherwise the snapshot
    /// size in bytes or the error rendered as a string.
    pub snapshot: Option<Result<u64, String>>,
}

impl NetSummary {
    /// Connection slots never returned: `accepted - conns_closed`.
    /// Zero after a clean drain.
    pub fn slot_leaks(&self) -> i64 {
        self.net.accepted as i64 - self.net.conns_closed as i64
    }

    /// Jobs accepted across all clients — must equal the audited job
    /// count (every network admission maps to exactly one audited
    /// service lifecycle).
    pub fn accepted_jobs(&self) -> u64 {
        self.clients.iter().map(|(_, n)| n).sum()
    }
}

/// What the last snapshot write did, for `/stats` metadata.
struct LastSnapshotWrite {
    at: Instant,
    ok: bool,
}

/// Persistence runtime state alongside the static [`PersistConfig`].
#[derive(Default)]
struct PersistState {
    /// `Some(n)` when startup restored `n` cache entries.
    restored_entries: Mutex<Option<usize>>,
    last_write: Mutex<Option<LastSnapshotWrite>>,
}

impl Default for LastSnapshotWrite {
    fn default() -> Self {
        LastSnapshotWrite { at: Instant::now(), ok: false }
    }
}

/// The server state shared by the accept loop and connection workers.
pub struct NetServer {
    service: SolveService,
    config: NetConfig,
    addr: SocketAddr,
    conns: JobQueue<TcpStream>,
    draining: AtomicBool,
    stop_accept: AtomicBool,
    stop_snapshot: AtomicBool,
    counters: NetCounters,
    quota: Option<QuotaTable>,
    fault_clock: FaultClock,
    clients: Mutex<HashMap<String, u64>>,
    persist: PersistState,
}

/// The running server: the accept thread plus connection workers.
/// [`drain`](NetHandle::drain) (or drop) shuts everything down
/// gracefully.
pub struct NetHandle {
    server: Arc<NetServer>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    snapshot_timer: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// spawns the solve service, the connection workers, and the accept
    /// loop, and returns the running handle.
    pub fn start(
        addr: &str,
        config: NetConfig,
        service: ServiceConfig,
    ) -> Result<NetHandle, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("local addr: {e}"))?;
        let quota = config.quota.map(QuotaTable::new);
        let max_conns = config.max_connections.max(1);
        let server = Arc::new(NetServer {
            service: SolveService::new(service),
            conns: JobQueue::new(max_conns),
            draining: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            stop_snapshot: AtomicBool::new(false),
            counters: NetCounters::default(),
            quota,
            fault_clock: FaultClock::default(),
            clients: Mutex::new(HashMap::new()),
            persist: PersistState::default(),
            addr: local,
            config,
        });
        // Restore warm state before the first connection can land a
        // job: any persistence error (missing file, torn write, foreign
        // bytes) degrades to a clean cold start — a snapshot is an
        // optimization, never a liveness dependency.
        if let Some(path) = server.config.persist.restore_path.clone() {
            match decss_persist::read_snapshot(&path)
                .map_err(|e| e.to_string())
                .and_then(|state| server.service.restore_warm_state(state))
            {
                Ok(entries) => {
                    *server.persist.restored_entries.lock().expect("persist lock") = Some(entries);
                }
                Err(e) => {
                    eprintln!(
                        "decss-net: restore from {} failed ({e}); starting cold",
                        path.display()
                    );
                }
            }
        }
        let workers = (0..max_conns)
            .map(|index| {
                let server = Arc::clone(&server);
                std::thread::Builder::new()
                    .name(format!("decss-conn-{index}"))
                    .spawn(move || conn_worker(&server))
                    .map_err(|e| format!("spawning connection worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("decss-accept".into())
                .spawn(move || accept_loop(&server, listener))
                .map_err(|e| format!("spawning accept loop: {e}"))?
        };
        let snapshot_timer = match (
            &server.config.persist.snapshot_path,
            server.config.persist.snapshot_interval,
        ) {
            (Some(_), Some(interval)) => {
                let server = Arc::clone(&server);
                Some(
                    std::thread::Builder::new()
                        .name("decss-snapshot".into())
                        .spawn(move || snapshot_timer_loop(&server, interval))
                        .map_err(|e| format!("spawning snapshot timer: {e}"))?,
                )
            }
            _ => None,
        };
        Ok(NetHandle { server, accept: Some(accept), workers, snapshot_timer })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The solve service behind the tier.
    pub fn service(&self) -> &SolveService {
        &self.service
    }

    /// Current network counters.
    pub fn counters(&self) -> NetSnapshot {
        self.counters.snapshot()
    }

    /// Flips `/ready` to 503 and refuses new jobs, without yet closing
    /// the listener — the first phase of a graceful drain, so load
    /// balancers and probes see "unready" while the socket still
    /// answers.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn client_id(req: &Request) -> String {
        req.header("x-decss-client").unwrap_or("anon").to_string()
    }

    fn record_client_job(&self, client: &str) {
        *self
            .clients
            .lock()
            .expect("clients lock")
            .entry(client.to_string())
            .or_default() += 1;
    }

    fn sorted_clients(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .clients
            .lock()
            .expect("clients lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }

    /// Exports the warm state and writes it to the configured snapshot
    /// path, recording the outcome for `/stats`. Callers arm this only
    /// when a path is configured.
    fn write_warm_snapshot(&self) -> Result<u64, String> {
        let path = self
            .config
            .persist
            .snapshot_path
            .as_ref()
            .expect("snapshot path configured");
        let result = decss_persist::write_snapshot(path, &self.service.export_warm_state())
            .map_err(|e| e.to_string());
        *self.persist.last_write.lock().expect("persist lock") =
            Some(LastSnapshotWrite { at: Instant::now(), ok: result.is_ok() });
        result
    }

    /// The `"snapshot"` metadata object for `/stats`, or `None` when
    /// persistence is not armed and nothing was restored.
    fn snapshot_metadata(&self) -> Option<String> {
        let restored = *self.persist.restored_entries.lock().expect("persist lock");
        let path = self.config.persist.snapshot_path.as_ref().or(self
            .config
            .persist
            .restore_path
            .as_ref())?;
        let (age_ms, last_write_ok) = match &*self.persist.last_write.lock().expect("persist lock")
        {
            Some(write) => (
                write.at.elapsed().as_millis().to_string(),
                if write.ok { "true" } else { "false" }.to_string(),
            ),
            None => ("null".to_string(), "null".to_string()),
        };
        let restored = restored.map_or("null".to_string(), |n| n.to_string());
        Some(format!(
            "\"path\": \"{}\", \"age_ms\": {age_ms}, \"last_write_ok\": {last_write_ok}, \
             \"restored_entries\": {restored}",
            escape(&path.display().to_string()),
        ))
    }

    /// How long a shed client should wait before retrying: roughly the
    /// time for the backlog to drain at the observed per-job latency.
    fn retry_hint_ms(&self) -> u64 {
        retry_hint_from(&self.service.stats())
    }
}

/// Per-job latency assumed before any job has completed: without it a
/// cold-start shed would quote the clamp floor no matter how deep the
/// backlog already is.
const COLD_START_JOB_MS: f64 = 100.0;

/// The `retry_after_ms` estimate from a stats snapshot: backlog divided
/// across workers at the observed mean per-job latency. With zero
/// recorded latencies (cold start under a thundering herd) the estimate
/// is seeded with [`COLD_START_JOB_MS`] so the hint still scales with
/// queue depth instead of collapsing to the floor.
fn retry_hint_from(stats: &decss_service::Stats) -> u64 {
    let samples: u64 = stats.latency.iter().map(|(_, h)| h.count()).sum();
    let per_job_ms = if samples == 0 {
        COLD_START_JOB_MS
    } else {
        stats
            .latency
            .iter()
            .map(|(_, h)| h.mean_ms())
            .fold(0.0f64, f64::max)
            .max(5.0)
    };
    let backlog = stats.queue_depth.max(1) as f64;
    ((per_job_ms * backlog / stats.workers.max(1) as f64) as u64).clamp(10, 2_000)
}

impl NetHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// The shared server state.
    pub fn server(&self) -> &Arc<NetServer> {
        &self.server
    }

    /// Graceful drain: flip `/ready` to 503, keep answering for
    /// `grace`, then stop accepting, finish in-flight connections, run
    /// the service backlog dry, and return the final accounting.
    pub fn drain(mut self, grace: Duration) -> NetSummary {
        self.shutdown(grace)
    }

    fn shutdown(&mut self, grace: Duration) -> NetSummary {
        self.server.begin_drain();
        if !grace.is_zero() {
            std::thread::sleep(grace);
        }
        self.server.stop_accept.store(true, Ordering::SeqCst);
        self.server.stop_snapshot.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(timer) = self.snapshot_timer.take() {
            let _ = timer.join();
        }
        // The accept loop closed the connection queue on exit; workers
        // finish their in-flight connection, drain the short backlog,
        // and stop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let service = self.server.service.drain();
        // The final snapshot comes *after* the drain, so it captures the
        // fully settled state: every lifecycle complete, cache warm.
        let snapshot = self
            .server
            .config
            .persist
            .armed()
            .then(|| self.server.write_warm_snapshot());
        NetSummary {
            net: self.server.counters.snapshot(),
            service,
            clients: self.server.sorted_clients(),
            snapshot,
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.shutdown(Duration::ZERO);
        }
    }
}

fn accept_loop(server: &Arc<NetServer>, listener: TcpListener) {
    while !server.stop_accept.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if server.fault_clock.fail_this_accept(&server.config.fault) {
                    // Injected accept-time failure: as if the kernel
                    // aborted the connection under us.
                    server.counters.faulted_accepts.fetch_add(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                // The listener is non-blocking (so this loop can poll
                // the stop flag); the accepted stream must not be.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                match server.conns.try_push(stream) {
                    Ok(()) => {
                        server.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(PushError::Full(stream) | PushError::Closed(stream)) => {
                        // Connection-level shed: answer fast and close
                        // rather than queueing unboundedly.
                        server.counters.refused_busy.fetch_add(1, Ordering::Relaxed);
                        refuse_busy(server, stream);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // No more accepts: let the workers run the short backlog dry.
    server.conns.close();
}

/// The interval snapshot thread: sleeps in short slices (so shutdown is
/// prompt), writing a snapshot every `interval`. Write failures are
/// logged and retried next tick — a full disk must not take the server
/// down. The final authoritative snapshot is the post-drain one.
fn snapshot_timer_loop(server: &Arc<NetServer>, interval: Duration) {
    let slice = Duration::from_millis(50).min(interval);
    let mut next = Instant::now() + interval;
    while !server.stop_snapshot.load(Ordering::SeqCst) {
        if Instant::now() < next {
            std::thread::sleep(slice);
            continue;
        }
        if let Err(e) = server.write_warm_snapshot() {
            eprintln!("decss-net: interval snapshot failed: {e}");
        }
        next = Instant::now() + interval;
    }
}

fn refuse_busy(server: &Arc<NetServer>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(server.config.write_timeout));
    let body = http::error_body(
        "busy",
        "connection pool is full; retry shortly",
        &[("retry_after_ms", server.retry_hint_ms().to_string())],
    );
    let _ = stream.write_all(&http::response(503, &body, true, &[]));
    let _ = stream.shutdown(Shutdown::Both);
}

fn conn_worker(server: &Arc<NetServer>) {
    while let Some(stream) = server.conns.pop() {
        server.counters.conns_open.fetch_add(1, Ordering::Relaxed);
        serve_connection(server, stream);
        server.counters.conns_open.fetch_sub(1, Ordering::Relaxed);
        server.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) enum ReadOutcome {
    Request(Request),
    CleanClose,
    Hangup,
    Timeout,
    Bad(HttpError),
    IdleDrain,
}

/// Reads one request off `stream` under `read_timeout`, polling
/// `draining` so idle keep-alive connections let go during a drain.
/// Shared by the serve tier and the shard front tier.
pub(crate) fn read_request_with(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    kept_alive: bool,
    read_timeout: Duration,
    limits: &Limits,
    draining: &dyn Fn() -> bool,
) -> ReadOutcome {
    let deadline = Instant::now() + read_timeout;
    let mut chunk = [0u8; 8192];
    loop {
        if !buf.is_empty() {
            match http::parse_request(buf, limits) {
                Ok(Parse::Ready { request, consumed }) => {
                    buf.drain(..consumed);
                    return ReadOutcome::Request(request);
                }
                Ok(Parse::NeedMore) => {}
                Err(e) => return ReadOutcome::Bad(e),
            }
        }
        if Instant::now() >= deadline {
            return ReadOutcome::Timeout;
        }
        if kept_alive && buf.is_empty() && draining() {
            // An idle keep-alive connection during drain: close now
            // instead of holding the worker for the full deadline. A
            // *partial* request keeps its full budget — in-flight work
            // finishes — and a fresh connection still gets its first
            // request answered (the grace window's whole point).
            return ReadOutcome::IdleDrain;
        }
        // Short poll slices so the total deadline and the drain flag
        // are both checked frequently.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::CleanClose
                } else {
                    ReadOutcome::Hangup
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => {
                return if buf.is_empty() {
                    ReadOutcome::CleanClose
                } else {
                    ReadOutcome::Hangup
                }
            }
        }
    }
}

fn read_one_request(
    server: &NetServer,
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    kept_alive: bool,
) -> ReadOutcome {
    read_request_with(
        stream,
        buf,
        kept_alive,
        server.config.read_timeout,
        &server.config.limits,
        &|| server.is_draining(),
    )
}

/// Writes `bytes`, honoring the write deadline and the fault plan.
/// Returns `false` when the connection is gone (the caller must stop
/// using it).
fn write_response(server: &NetServer, stream: &mut TcpStream, status: u16, bytes: &[u8]) -> bool {
    match status / 100 {
        2 => server.counters.responses_2xx.fetch_add(1, Ordering::Relaxed),
        4 => server.counters.responses_4xx.fetch_add(1, Ordering::Relaxed),
        _ => server.counters.responses_5xx.fetch_add(1, Ordering::Relaxed),
    };
    let _ = stream.set_write_timeout(Some(server.config.write_timeout));
    if server.fault_clock.fail_this_write(&server.config.fault) {
        // Injected mid-write failure: half the bytes, then sever.
        server.counters.write_faults.fetch_add(1, Ordering::Relaxed);
        let _ = stream.write_all(&bytes[..bytes.len() / 2]);
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    match stream.write_all(bytes) {
        Ok(()) => true,
        Err(_) => {
            server.counters.hangups.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

fn serve_connection(server: &Arc<NetServer>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut served = 0u32;
    loop {
        match read_one_request(server, &mut stream, &mut buf, served > 0) {
            ReadOutcome::Request(request) => {
                server.counters.requests.fetch_add(1, Ordering::Relaxed);
                served += 1;
                let close = request.wants_close()
                    || served >= server.config.keep_alive_requests
                    || server.is_draining();
                let (status, body, extra) = handle_request(server, &request);
                let bytes = http::response(status, &body, close, &extra);
                if !write_response(server, &mut stream, status, &bytes) {
                    return;
                }
                if close {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            ReadOutcome::CleanClose | ReadOutcome::IdleDrain => return,
            ReadOutcome::Hangup => {
                server.counters.hangups.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::Timeout => {
                server.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let body = http::error_body(
                    "timeout",
                    "request not completed within the read deadline",
                    &[],
                );
                let bytes = http::response(408, &body, true, &[]);
                write_response(server, &mut stream, 408, &bytes);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            ReadOutcome::Bad(err) => {
                server.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let code = match err.status {
                    413 => "body_too_large",
                    431 => "head_too_large",
                    501 => "not_implemented",
                    505 => "unsupported_version",
                    _ => "bad_request",
                };
                let bytes = http::error_response(&err, code, true);
                write_response(server, &mut stream, err.status, &bytes);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

type Reply = (u16, Vec<u8>, Vec<(&'static str, String)>);

fn reply(status: u16, body: Vec<u8>) -> Reply {
    (status, body, Vec::new())
}

fn handle_request(server: &Arc<NetServer>, req: &Request) -> Reply {
    let path = req.target.split('?').next().unwrap_or("");
    match path {
        "/healthz" | "/ready" | "/stats" if req.method != "GET" => reply(
            405,
            http::error_body("method_not_allowed", &format!("{path} takes GET"), &[]),
        ),
        "/solve" | "/jobs" if req.method != "POST" => reply(
            405,
            http::error_body("method_not_allowed", &format!("{path} takes POST"), &[]),
        ),
        "/healthz" => reply(200, b"{\"ok\": true}\n".to_vec()),
        "/ready" => {
            if server.is_draining() {
                reply(
                    503,
                    http::error_body(
                        "draining",
                        "service is draining; no longer ready",
                        &[("ready", "false".into())],
                    ),
                )
            } else {
                reply(200, b"{\"ready\": true}\n".to_vec())
            }
        }
        "/stats" => reply(200, stats_doc(server).into_bytes()),
        "/solve" => solve_one(server, req),
        "/jobs" => solve_batch(server, req),
        _ => reply(404, http::error_body("not_found", &format!("no route {path}"), &[])),
    }
}

fn stats_doc(server: &NetServer) -> String {
    let service = server.service.stats();
    let net = server.counters.snapshot();
    let clients = server
        .sorted_clients()
        .into_iter()
        .map(|(id, jobs)| format!("\"{}\": {jobs}", escape(&id)))
        .collect::<Vec<_>>()
        .join(", ");
    // Servers without persistence emit exactly the pre-persistence
    // document — the key only appears when there is something to say.
    let snapshot = server
        .snapshot_metadata()
        .map(|fields| format!("  \"snapshot\": {{{fields}}},\n"))
        .unwrap_or_default();
    format!(
        "{{\n  \"ready\": {},\n  \"service\": {{{}}},\n  \"net\": {{{}}},\n{snapshot}  \"clients\": {{{clients}}}\n}}\n",
        !server.is_draining(),
        service.json_fields(),
        net.json_fields(),
    )
}

fn solve_one(server: &Arc<NetServer>, req: &Request) -> Reply {
    if server.is_draining() {
        return reply(503, http::error_body("draining", "intake is closed", &[]));
    }
    let client = NetServer::client_id(req);
    if let Some(quota) = &server.quota {
        if let Err(wait_ms) = quota.admit(&client) {
            server.counters.quota_denied.fetch_add(1, Ordering::Relaxed);
            return reply(
                429,
                http::error_body(
                    "quota_exceeded",
                    &format!("client {client:?} exhausted its quota"),
                    &[("retry_after_ms", wait_ms.to_string())],
                ),
            );
        }
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return reply(400, http::error_body("bad_encoding", "body is not valid UTF-8", &[]));
    };
    let specs = match jobs::parse_job_specs(body, FileAccess::Denied) {
        Ok(specs) => specs,
        Err(e) => return reply(400, http::error_body("bad_job", &e, &[])),
    };
    if specs.len() != 1 {
        return reply(
            400,
            http::error_body(
                "bad_job",
                "POST /solve takes exactly one job; POST /jobs runs batches",
                &[],
            ),
        );
    }
    let spec = &specs[0];
    match server.service.try_submit(Arc::clone(&spec.graph), spec.req.clone()) {
        Ok(id) => {
            server.record_client_job(&client);
            let result = server.service.join(id);
            let status = if result.is_ok() { 200 } else { 422 };
            let row = jobs::job_row(0, spec, &result);
            reply(status, format!("{}\n", row.trim_start()).into_bytes())
        }
        Err(SubmitError::QueueFull) => {
            server.counters.shed.fetch_add(1, Ordering::Relaxed);
            reply(
                429,
                http::error_body(
                    "overloaded",
                    "job queue is full; retry shortly",
                    &[("retry_after_ms", server.retry_hint_ms().to_string())],
                ),
            )
        }
        Err(SubmitError::Draining) => {
            reply(503, http::error_body("draining", "intake is closed", &[]))
        }
    }
}

fn solve_batch(server: &Arc<NetServer>, req: &Request) -> Reply {
    if server.is_draining() {
        return reply(503, http::error_body("draining", "intake is closed", &[]));
    }
    let client = NetServer::client_id(req);
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return reply(400, http::error_body("bad_encoding", "body is not valid UTF-8", &[]));
    };
    let specs = match jobs::parse_job_specs(body, FileAccess::Denied) {
        Ok(specs) => specs,
        Err(e) => return reply(400, http::error_body("bad_jobs", &e, &[])),
    };
    // Submit every job (bounded retries on a momentarily full queue),
    // then join in order — rows come back in submission order, shed or
    // quota-denied jobs as error rows.
    let mut submitted: Vec<Result<decss_service::JobId, SolveError>> =
        Vec::with_capacity(specs.len());
    for spec in &specs {
        if let Some(quota) = &server.quota {
            if let Err(wait_ms) = quota.admit(&client) {
                server.counters.quota_denied.fetch_add(1, Ordering::Relaxed);
                submitted.push(Err(SolveError::Rejected(format!(
                    "quota exceeded (retry_after_ms={wait_ms})"
                ))));
                continue;
            }
        }
        let mut attempts = 0u32;
        let outcome = loop {
            match server.service.try_submit(Arc::clone(&spec.graph), spec.req.clone()) {
                Ok(id) => break Ok(id),
                Err(SubmitError::Draining) => {
                    break Err(SolveError::Rejected("service is draining".into()))
                }
                Err(SubmitError::QueueFull) if attempts < server.config.submit_retries => {
                    attempts += 1;
                    std::thread::sleep(server.config.submit_retry_delay);
                }
                Err(SubmitError::QueueFull) => {
                    server.counters.shed.fetch_add(1, Ordering::Relaxed);
                    break Err(SolveError::Rejected("shed: job queue is full".into()));
                }
            }
        };
        if outcome.is_ok() {
            server.record_client_job(&client);
        }
        submitted.push(outcome);
    }
    let rows: Vec<String> = specs
        .iter()
        .zip(&submitted)
        .enumerate()
        .map(|(index, (spec, job))| match job {
            Ok(id) => jobs::job_row(index, spec, &server.service.join(*id)),
            Err(e) => jobs::job_row(index, spec, &Err(e.clone())),
        })
        .collect();
    let document = jobs::report_document(&server.service.stats(), &rows);
    reply(200, document.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::retry_hint_from;
    use decss_service::{LatencyHistogram, Stats};

    #[test]
    fn cold_start_hint_scales_with_backlog() {
        // Zero completed jobs, but a real backlog: the hint must budget
        // per-job time, not collapse near the clamp floor.
        let stats = Stats { workers: 2, queue_depth: 8, ..Stats::default() };
        assert_eq!(retry_hint_from(&stats), 400, "8 jobs / 2 workers at 100 ms each");
        let deeper = Stats { workers: 2, queue_depth: 16, ..Stats::default() };
        assert!(
            retry_hint_from(&deeper) > retry_hint_from(&stats),
            "a deeper backlog must push the hint up"
        );
    }

    #[test]
    fn observed_latency_overrides_the_cold_start_seed() {
        let mut h = LatencyHistogram::new();
        h.record(10_000); // one 10 ms job
        let stats = Stats {
            workers: 1,
            queue_depth: 4,
            completed: 1,
            latency: vec![("improved".to_string(), h)],
            ..Stats::default()
        };
        assert_eq!(retry_hint_from(&stats), 40, "4 jobs at the observed 10 ms");
    }

    #[test]
    fn hint_stays_clamped() {
        let idle = Stats { workers: 8, queue_depth: 0, ..Stats::default() };
        assert!(retry_hint_from(&idle) >= 10);
        let swamped = Stats { workers: 1, queue_depth: 100_000, ..Stats::default() };
        assert_eq!(retry_hint_from(&swamped), 2_000);
    }
}
