//! Seeded, versioned, replayable workload traces.
//!
//! A trace is a line-oriented file: one header object on the first
//! line, then one timestamped job object per line — the exact
//! [`crate::jobs`] dialect plus two trace-only keys (`"at_ms"`, the
//! arrival offset, and `"cancel"`, a pre-submission cancellation):
//!
//! ```text
//! {"trace_version": 1, "seed": 7, "profile": "mixed", "arrival": "poisson", "jobs": 40}
//! {"at_ms": 0, "algorithm": "improved", "family": "powerlaw", "n": 64, "seed": 3}
//! {"at_ms": 12, "algorithm": "greedy", "family": "grid", "n": 36, "seed": 5, "cancel": true}
//! ```
//!
//! [`generate`] writes such a file from a seed (Poisson or bursty
//! arrivals mixing algorithms, families, duplicate storms, delta
//! batches, deadline pressure, cancellations, and edge-failure storms);
//! [`replay`] runs one through a local [`SolveService`] and reports
//! per-job rows plus a tail-latency summary, and [`replay_remote`]
//! drives a running `decss serve --listen` / `decss shard` front end
//! instead. Replaying the same trace twice yields byte-identical job
//! rows modulo `wall_ms` / `cache_hit` — the chaotic ingredients are
//! encoded so their *outcome* is deterministic (cancels are flagged
//! before submission, deadline pressure is `deadline_ms: 0`, deltas
//! only reweight/insert).

use crate::client::Client;
use crate::jobs::{self, FileAccess, JobSpec};
use decss_graphs::Graph;
use decss_service::{EventKind, ServiceConfig, SolveService};
use decss_solver::json::{escape, number_field, string_field};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// The trace format version this build writes and accepts.
pub const TRACE_VERSION: u64 = 1;

/// The parsed first line of a trace file.
#[derive(Clone, Debug)]
pub struct TraceHeader {
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u64,
    /// The generator seed (echo; replay does not reseed anything).
    pub seed: u64,
    /// The generator profile label.
    pub profile: String,
    /// Arrival process label (`"poisson"` or `"bursty"`).
    pub arrival: String,
}

/// One timestamped job of a trace.
#[derive(Debug)]
pub struct TraceEvent {
    /// Arrival offset from the start of the trace.
    pub at_ms: u64,
    /// Cancel the job before it is submitted (it must come back
    /// `Cancelled` — deterministically, since the service checks the
    /// flag before anything else).
    pub cancel: bool,
    /// The raw job line (forwardable verbatim to a backend — the
    /// trace-only keys are ignored by the jobs parser).
    pub line: String,
    /// The parsed job.
    pub spec: JobSpec,
}

/// A parsed trace: header plus events in arrival order.
#[derive(Debug)]
pub struct Trace {
    /// The first line.
    pub header: TraceHeader,
    /// The job events, `at_ms` non-decreasing.
    pub events: Vec<TraceEvent>,
}

/// Parses a trace file. The header must be the first non-blank line;
/// job lines follow the [`crate::jobs`] dialect and must carry
/// non-decreasing `"at_ms"` stamps.
pub fn parse(text: &str, files: FileAccess) -> Result<Trace, String> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        let Some((idx, line)) = lines.next() else {
            return Err("empty trace file (expected a header line)".into());
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !line.contains("\"trace_version\"") {
            return Err(format!(
                "trace line {}: the first line must be a header with \"trace_version\"",
                idx + 1
            ));
        }
        let version = number_field(line, "trace_version")
            .ok_or_else(|| format!("trace line {}: malformed \"trace_version\"", idx + 1))?
            as u64;
        if version != TRACE_VERSION {
            return Err(format!(
                "trace version {version} not supported (this build speaks version {TRACE_VERSION})"
            ));
        }
        break TraceHeader {
            version,
            seed: number_field(line, "seed").map_or(0, |s| s as u64),
            profile: string_field(line, "profile").unwrap_or_else(|| "unknown".into()),
            arrival: string_field(line, "arrival").unwrap_or_else(|| "unknown".into()),
        };
    };
    let mut events = Vec::new();
    let mut graphs: HashMap<String, Arc<Graph>> = HashMap::new();
    let mut last_at = 0u64;
    for (idx, line) in lines {
        let line = line.trim();
        let at = |msg: String| format!("trace line {}: {msg}", idx + 1);
        if line.is_empty() {
            continue;
        }
        if !line.contains("\"algorithm\"") {
            return Err(at("trace job lacks an \"algorithm\" field".into()));
        }
        let at_ms = number_field(line, "at_ms")
            .ok_or_else(|| at("trace job needs an \"at_ms\" arrival stamp".into()))?
            as u64;
        if at_ms < last_at {
            return Err(at(format!("\"at_ms\" went backwards ({at_ms} after {last_at})")));
        }
        last_at = at_ms;
        let cancel = line.contains("\"cancel\": true");
        let spec = jobs::parse_job_line(line, files, &mut graphs).map_err(at)?;
        events.push(TraceEvent { at_ms, cancel, line: line.to_string(), spec });
    }
    if events.is_empty() {
        return Err("trace has a header but no job events".into());
    }
    Ok(Trace { header, events })
}

/// Arrival process of a generated trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arrival {
    /// Independent exponential inter-arrival gaps.
    Poisson,
    /// On/off: tight bursts separated by long idle gaps.
    Bursty,
}

impl Arrival {
    /// The header label.
    pub fn label(self) -> &'static str {
        match self {
            Arrival::Poisson => "poisson",
            Arrival::Bursty => "bursty",
        }
    }

    /// Parses a `--arrival` flag value.
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "poisson" => Ok(Arrival::Poisson),
            "bursty" => Ok(Arrival::Bursty),
            other => Err(format!("unknown arrival process {other:?} (poisson or bursty)")),
        }
    }
}

/// Knobs of the trace generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Master seed: same seed, same trace, byte for byte.
    pub seed: u64,
    /// Number of job events.
    pub jobs: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// Mean inter-arrival gap (Poisson) or inter-burst gap (bursty).
    pub mean_gap_ms: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            jobs: 40,
            arrival: Arrival::Poisson,
            mean_gap_ms: 10,
        }
    }
}

/// The family pool the generator mixes: a classic slice of the sweep
/// grid plus the atlas families, each at a size that keeps replay fast.
const FAMILY_POOL: &[(&str, usize)] = &[
    ("grid", 36),
    ("sparse-random", 48),
    ("hard-sqrt", 49),
    ("tree-chords", 40),
    ("powerlaw", 64),
    ("roadmesh", 81),
    ("expander", 64),
    ("nearclique", 64),
    ("adversarial", 96),
];

/// The algorithms the generator mixes (all registry names).
const ALGORITHM_POOL: &[&str] = &["improved", "basic", "shortcut", "greedy", "unweighted"];

/// Generates a seeded trace: same [`GenConfig`], same bytes. The mix
/// covers algorithms, families (classic + atlas), duplicate storms
/// (repeated identical specs — cache-hit pressure), delta batches
/// (reweights/inserts only, so the instance stays 2-edge-connected),
/// deadline pressure (`deadline_ms: 0`, a deterministic queue expiry),
/// cancellations (`"cancel": true`, flagged before submission), and
/// edge-failure storms (`fail_edges`).
pub fn generate(cfg: &GenConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = format!(
        "{{\"trace_version\": {TRACE_VERSION}, \"seed\": {}, \"profile\": \"mixed\", \
         \"arrival\": \"{}\", \"jobs\": {}}}\n",
        cfg.seed,
        cfg.arrival.label(),
        cfg.jobs,
    );
    let mut at_ms = 0u64;
    let mut burst_left = 0usize;
    let mut emitted = 0usize;
    let mut previous: Option<String> = None;
    let mut storm_left = 0usize;
    while emitted < cfg.jobs {
        // Arrival stamp.
        match cfg.arrival {
            Arrival::Poisson => {
                let u = 1.0 - rng.gen::<f64>(); // (0, 1]
                at_ms += (-(cfg.mean_gap_ms as f64) * u.ln()).round() as u64;
            }
            Arrival::Bursty => {
                if burst_left == 0 {
                    burst_left = rng.gen_range(4..=12);
                    let u = 1.0 - rng.gen::<f64>();
                    at_ms += (-(8.0 * cfg.mean_gap_ms as f64) * u.ln()).round() as u64;
                }
                burst_left -= 1; // jobs inside a burst share the stamp
            }
        }
        // Duplicate storm: repeat the previous body verbatim (same
        // instance and request — pure cache pressure) at new stamps.
        if storm_left > 0 {
            if let Some(body) = &previous {
                out.push_str(&format!("{{\"at_ms\": {at_ms}, {body}}}\n"));
                storm_left -= 1;
                emitted += 1;
                continue;
            }
        }
        let (family, n) = FAMILY_POOL[rng.gen_range(0..FAMILY_POOL.len())];
        let algorithm = ALGORITHM_POOL[rng.gen_range(0..ALGORITHM_POOL.len())];
        let seed = rng.gen_range(0..5u64);
        let mut body = format!(
            "\"algorithm\": \"{algorithm}\", \"family\": \"{family}\", \"n\": {n}, \
             \"seed\": {seed}"
        );
        let roll: f64 = rng.gen();
        if roll < 0.10 {
            // Deadline pressure: an already-expired budget is the one
            // deadline whose outcome does not race the workers.
            body.push_str(", \"deadline_ms\": 0");
        } else if roll < 0.25 {
            // Edge-failure storm (seeded inside the solver).
            body.push_str(&format!(", \"fail_edges\": {}", rng.gen_range(1..=3u32)));
        } else if roll < 0.45 {
            // Delta batch: reweights and inserts only — ids below n are
            // always valid (m >= n in a 2-edge-connected graph) and the
            // instance stays 2-edge-connected.
            let deltas: Vec<String> = (0..rng.gen_range(1..=3usize))
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        format!("rw({},{})", rng.gen_range(0..n), rng.gen_range(1..=64u64))
                    } else {
                        let u = rng.gen_range(0..n);
                        let v = (u + rng.gen_range(1..n)) % n;
                        format!("ins({u},{v},{})", rng.gen_range(1..=64u64))
                    }
                })
                .collect();
            body.push_str(&format!(
                ", \"deltas\": [{}]",
                deltas
                    .iter()
                    .map(|d| format!("\"{d}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let mut line = format!("{{\"at_ms\": {at_ms}, {body}");
        if (0.45..0.53).contains(&roll) {
            // Cancellation: flagged in the trace, applied pre-submit.
            line.push_str(", \"cancel\": true");
        }
        line.push('}');
        out.push_str(&line);
        out.push('\n');
        emitted += 1;
        // Kick off a duplicate storm now and then.
        if roll >= 0.90 {
            storm_left = rng.gen_range(2..=4);
        }
        previous = Some(body);
    }
    out
}

/// Knobs of the local replayer.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Solve-pool workers.
    pub workers: usize,
    /// Queue bound (submission blocks at the bound; nothing is shed).
    pub queue_cap: usize,
    /// Instance-cache capacity.
    pub cache_cap: usize,
    /// Honor `at_ms` pacing (sleep between arrivals). Off by default:
    /// determinism tests and CI replay as fast as possible.
    pub pace: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { workers: 3, queue_cap: 16, cache_cap: 64, pace: false }
    }
}

/// What a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The full report document (replay header, service stats, rows).
    pub document: String,
    /// The drain audit (local replay only; `None` for remote).
    pub audit: Option<Result<usize, String>>,
    /// Jobs that came back with an error row — deliberate trace
    /// failures (cancels, expiries, failure storms) land here, so a
    /// nonzero count is data, not an infrastructure problem.
    pub failed: u64,
    /// Total job events replayed.
    pub jobs: usize,
}

/// Percentile (nearest-rank) over an unsorted sample of microseconds,
/// in milliseconds.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

/// Renders the `"replay"` header object of a report document.
fn replay_header(trace: &Trace, paced: bool, latencies_us: &mut [u64]) -> String {
    latencies_us.sort_unstable();
    format!(
        "\"trace_version\": {}, \"trace_seed\": {}, \"profile\": \"{}\", \"arrival\": \"{}\", \
         \"events\": {}, \"paced\": {paced}, \"tail_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \
         \"p99\": {:.3}, \"max\": {:.3}}}",
        trace.header.version,
        trace.header.seed,
        escape(&trace.header.profile),
        escape(&trace.header.arrival),
        trace.events.len(),
        percentile_ms(latencies_us, 0.50),
        percentile_ms(latencies_us, 0.95),
        percentile_ms(latencies_us, 0.99),
        percentile_ms(latencies_us, 1.0),
    )
}

/// Replays a trace through a fresh local [`SolveService`]: submits
/// every event in arrival order (optionally paced by `at_ms`), joins
/// them all, drains, and renders a report document with a `"replay"`
/// header (including the tail-latency summary derived from the service
/// log), the final `"service"` stats, and one `"jobs"` row per event.
///
/// Determinism contract: same trace file + same config ⇒ byte-identical
/// job rows modulo `wall_ms` / `cache_hit`, and a balanced audit.
pub fn replay(text: &str, files: FileAccess, cfg: &ReplayConfig) -> Result<ReplayOutcome, String> {
    let trace = parse(text, files)?;
    let service = SolveService::new(
        ServiceConfig::default()
            .workers(cfg.workers.max(1))
            .queue_capacity(cfg.queue_cap.max(1))
            .cache_capacity(cfg.cache_cap),
    );
    let started = std::time::Instant::now();
    let mut ids = Vec::with_capacity(trace.events.len());
    for event in &trace.events {
        if cfg.pace {
            let due = Duration::from_millis(event.at_ms);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let mut req = event.spec.req.clone();
        if event.cancel {
            req = req.cancel_flag(Arc::new(AtomicBool::new(true)));
        }
        ids.push(service.submit(Arc::clone(&event.spec.graph), req));
    }
    let results = service.join_all(&ids);
    // Per-job serving latency from the accountability log: the span
    // between the Submitted and Finished events.
    let mut submitted_us: HashMap<u64, u64> = HashMap::new();
    let mut latencies_us: Vec<u64> = Vec::new();
    for event in service.log().snapshot() {
        match event.kind {
            EventKind::Submitted => {
                submitted_us.insert(event.job.0, event.at_us);
            }
            EventKind::Finished { .. } => {
                if let Some(start) = submitted_us.get(&event.job.0) {
                    latencies_us.push(event.at_us.saturating_sub(*start));
                }
            }
            EventKind::Started { .. } => {}
        }
    }
    let failed = results.iter().filter(|r| r.is_err()).count() as u64;
    let rows: Vec<String> = trace
        .events
        .iter()
        .zip(&results)
        .enumerate()
        .map(|(index, (event, result))| jobs::job_row(index, &event.spec, result))
        .collect();
    let stats = service.stats();
    let summary = service.drain();
    let document = format!(
        "{{\n  \"replay\": {{{}}},\n  \"service\": {{{}}},\n  \"jobs\": [\n{}\n  ]\n}}\n",
        replay_header(&trace, cfg.pace, &mut latencies_us),
        stats.json_fields(),
        rows.join(",\n"),
    );
    Ok(ReplayOutcome {
        document,
        audit: Some(summary.audit),
        failed,
        jobs: trace.events.len(),
    })
}

/// Replays a trace against a running front end (`decss serve --listen`
/// or `decss shard`): every event line is posted verbatim as a
/// single-job `POST /solve` (the trace-only keys are ignored by the
/// server's parser), in arrival order. Cancellation events cannot be
/// flagged remotely, so they are sent with their flag stripped — the
/// remote replay measures serving, not cancellation plumbing.
pub fn replay_remote(
    text: &str,
    target: &str,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, String> {
    let trace = parse(text, FileAccess::Denied)?;
    let addr = target
        .parse()
        .map_err(|e| format!("target address {target:?}: {e}"))?;
    let client = Client::new(addr).with_client_id("decss-trace-replay");
    let started = std::time::Instant::now();
    let mut rows = Vec::with_capacity(trace.events.len());
    let mut failed = 0u64;
    let mut latencies_us: Vec<u64> = Vec::new();
    for (index, event) in trace.events.iter().enumerate() {
        if cfg.pace {
            let due = Duration::from_millis(event.at_ms);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let sent = std::time::Instant::now();
        let row = match client.post("/solve", &format!("[\n{}\n]", event.line)) {
            Ok(resp) => {
                let answer = resp.text();
                let row = answer.trim().to_string();
                if resp.status != 200 || row.contains("\"error\"") {
                    failed += 1;
                }
                format!(
                    "    {}",
                    row.replacen("\"job\": 0,", &format!("\"job\": {index},"), 1)
                )
            }
            Err(e) => {
                failed += 1;
                format!("    {{\"job\": {index}, \"error\": \"{}\"}}", escape(&e))
            }
        };
        latencies_us.push(sent.elapsed().as_micros() as u64);
        rows.push(row);
    }
    let document = format!(
        "{{\n  \"replay\": {{{}, \"target\": \"{}\"}},\n  \"jobs\": [\n{}\n  ]\n}}\n",
        replay_header(&trace, cfg.pace, &mut latencies_us),
        escape(target),
        rows.join(",\n"),
    );
    Ok(ReplayOutcome { document, audit: None, failed, jobs: trace.events.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parses() {
        let cfg = GenConfig { seed: 11, jobs: 30, ..GenConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b, "same seed, same bytes");
        let trace = parse(&a, FileAccess::Denied).expect("generated trace parses");
        assert_eq!(trace.events.len(), 30);
        assert_eq!(trace.header.seed, 11);
        assert_eq!(trace.header.arrival, "poisson");
        // Arrival stamps are non-decreasing by construction.
        for pair in trace.events.windows(2) {
            assert!(pair[0].at_ms <= pair[1].at_ms);
        }
    }

    #[test]
    fn bursty_traces_share_stamps_inside_a_burst() {
        let cfg = GenConfig {
            seed: 3,
            jobs: 40,
            arrival: Arrival::Bursty,
            ..GenConfig::default()
        };
        let trace = parse(&generate(&cfg), FileAccess::Denied).expect("parses");
        let repeats = trace
            .events
            .windows(2)
            .filter(|pair| pair[0].at_ms == pair[1].at_ms)
            .count();
        assert!(repeats >= 10, "bursts must stack arrivals: {repeats} shared stamps");
    }

    #[test]
    fn parser_rejects_bad_traces() {
        assert!(parse("", FileAccess::Denied).is_err());
        let headerless =
            "{\"at_ms\": 0, \"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}\n";
        assert!(parse(headerless, FileAccess::Denied).is_err_and(|e| e.contains("trace_version")));
        let future = format!("{{\"trace_version\": {}}}\n", TRACE_VERSION + 1);
        assert!(parse(&future, FileAccess::Denied).is_err_and(|e| e.contains("not supported")));
        let unstamped = format!(
            "{{\"trace_version\": {TRACE_VERSION}}}\n\
             {{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}}\n"
        );
        assert!(parse(&unstamped, FileAccess::Denied).is_err_and(|e| e.contains("at_ms")));
        let backwards = format!(
            "{{\"trace_version\": {TRACE_VERSION}}}\n\
             {{\"at_ms\": 5, \"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}}\n\
             {{\"at_ms\": 1, \"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}}\n"
        );
        assert!(parse(&backwards, FileAccess::Denied).is_err_and(|e| e.contains("backwards")));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted = [1_000, 2_000, 3_000, 4_000];
        assert_eq!(percentile_ms(&sorted, 0.50), 2.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 4.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }
}
