//! `decss-net`: the hardened network service tier.
//!
//! A hand-rolled HTTP/1.1 front-end over the batch solve service —
//! `std::net` only, no async runtime — built for hostile conditions:
//!
//! * **bounded everything** — a fixed connection pool fed by a
//!   non-blocking accept loop ([`server`]), strict parser caps on head
//!   size, header count, and body size ([`http`]);
//! * **load shedding** — pool-full connections get a fast `503 busy`,
//!   queue-full jobs a `429` with a `retry_after_ms` hint, and
//!   per-client token buckets ([`quota`]) meter admission;
//! * **graceful drain** — `/ready` flips to 503 first, the listener
//!   closes after a grace window, in-flight requests finish, and the
//!   solve service runs its backlog dry with an audited log;
//! * **provable robustness** — a deterministic fault-injection plan
//!   ([`fault`]) and a chaos harness ([`stress`]) that asserts report
//!   byte-identity, slot-leak freedom, and clean drain accounting.
//!
//! The job/report dialect is shared verbatim with `decss serve`'s file
//! mode via [`jobs`].

#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod http;
pub mod jobs;
pub mod quota;
pub mod server;
pub mod shard;
pub mod signal;
pub mod stress;
pub mod trace;

pub use client::{raw_exchange, Client, Response};
pub use fault::{FaultClock, FaultPlan};
pub use http::{HttpError, Limits, Parse, Request};
pub use jobs::{parse_job_specs, FileAccess, JobSpec};
pub use quota::{QuotaConfig, QuotaTable};
pub use server::{NetConfig, NetHandle, NetServer, NetSnapshot, NetSummary, PersistConfig};
pub use shard::{
    rendezvous_pick, rendezvous_score, ShardConfig, ShardHandle, ShardServer, ShardSummary,
};
pub use stress::{chaos, ChaosReport, StressConfig};
pub use trace::{Arrival, GenConfig, ReplayConfig, ReplayOutcome, Trace, TraceEvent, TraceHeader};
