//! A strict, incremental HTTP/1.1 request parser and response writer.
//!
//! The workspace is offline (no hyper/tokio), so the network tier
//! hand-rolls the small slice of HTTP it needs — and hardens it: every
//! input either parses, asks for more bytes, or is rejected with a
//! structured 4xx/5xx [`HttpError`]. The parser never panics on
//! malformed input, never buffers past its [`Limits`], and is
//! *prefix-closed*: a prefix of a valid request is never an error, only
//! [`Parse::NeedMore`] — the property the fuzz suite
//! (`tests/parser_fuzz.rs`) pins under random truncation and mutation.
//!
//! Deliberate restrictions (each rejected with a structured status, not
//! ignored): `Transfer-Encoding` is not implemented (501 — a body needs
//! an exact `Content-Length`), conflicting or non-numeric
//! `Content-Length` values are 400, and protocol versions other than
//! HTTP/1.0 / 1.1 are 505.

/// Caps on what the parser will buffer — the "no unbounded buffering"
/// half of the robustness contract.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Max bytes of request head (request line + headers + blank line).
    pub max_head_bytes: usize,
    /// Max number of header lines.
    pub max_headers: usize,
    /// Max declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1 << 20,
        }
    }
}

/// One parsed request. Header names are lowercased; the body is raw
/// bytes (exactly `Content-Length` of them).
#[derive(Clone, Debug)]
pub struct Request {
    /// The method token, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path plus query), starting with `/`.
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection must close after this request
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// A structured parse/handling rejection: the HTTP status to answer
/// with plus a short machine-readable detail for the JSON error body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpError {
    /// The 4xx/5xx status code.
    pub status: u16,
    /// One-line detail, safe to embed in a JSON string (ASCII, no
    /// quotes beyond what [`crate::jobs`]' escaping handles).
    pub detail: String,
}

impl HttpError {
    fn new(status: u16, detail: impl Into<String>) -> Self {
        HttpError { status, detail: detail.into() }
    }
}

/// Outcome of a parse attempt over the bytes buffered so far.
#[derive(Debug)]
pub enum Parse {
    /// The buffer holds a prefix of a (potentially) valid request —
    /// read more bytes and try again.
    NeedMore,
    /// A complete request; `consumed` bytes of the buffer belong to it
    /// (drain them before parsing the next pipelined request).
    Ready {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
}

/// Finds the end of the request head: the index *after* the
/// `\r\n\r\n` terminator, if it is in `buf`.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.')
}

/// Attempts to parse one request from `buf`.
///
/// Returns [`Parse::NeedMore`] while the buffer holds only a prefix,
/// [`Parse::Ready`] once a whole request (head + declared body) is
/// buffered, and a structured [`HttpError`] for anything that can never
/// become valid: oversized heads (431), malformed framing (400),
/// unsupported transfer encodings (501), oversized bodies (413), or
/// unsupported protocol versions (505).
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parse, HttpError> {
    let head_len = match head_end(buf) {
        Some(end) if end > limits.max_head_bytes => {
            return Err(HttpError::new(
                431,
                format!("request head exceeds {} bytes", limits.max_head_bytes),
            ));
        }
        Some(end) => end,
        None if buf.len() >= limits.max_head_bytes => {
            return Err(HttpError::new(
                431,
                format!("request head exceeds {} bytes", limits.max_head_bytes),
            ));
        }
        None => return Ok(Parse::NeedMore),
    };
    let head = &buf[..head_len - 4];
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    if head
        .bytes()
        .any(|b| b != b'\r' && b != b'\n' && b.is_ascii_control() && b != b'\t')
    {
        return Err(HttpError::new(400, "control bytes in request head"));
    }
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                "malformed request line (expected `METHOD TARGET HTTP/1.1`)",
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    if !target.starts_with('/') || !target.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(HttpError::new(400, "malformed request target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(505, format!("unsupported protocol {version:?}"))),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        // `split("\r\n")` leaves a bare CR or LF inside the line — a
        // classic header-smuggling vector; reject instead of trimming.
        if line.bytes().any(|b| b == b'\r' || b == b'\n') {
            return Err(HttpError::new(400, "bare CR or LF in request head"));
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::new(
                431,
                format!("more than {} header lines", limits.max_headers),
            ));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "header line without a colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::new(400, format!("malformed header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::new(
            501,
            "transfer-encoding is not supported; send an exact content-length",
        ));
    }
    let mut content_length: u64 = 0;
    let mut seen_length: Option<&str> = None;
    for (name, value) in &headers {
        if name != "content-length" {
            continue;
        }
        if let Some(prev) = seen_length {
            if prev != value {
                return Err(HttpError::new(400, "conflicting content-length headers"));
            }
            continue;
        }
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::new(400, format!("malformed content-length {value:?}")));
        }
        content_length = value
            .parse()
            .map_err(|_| HttpError::new(400, format!("malformed content-length {value:?}")))?;
        seen_length = Some(value);
    }
    if content_length > limits.max_body_bytes as u64 {
        return Err(HttpError::new(
            413,
            format!(
                "declared body of {content_length} bytes exceeds {}",
                limits.max_body_bytes
            ),
        ));
    }

    let total = head_len + content_length as usize;
    if buf.len() < total {
        return Ok(Parse::NeedMore);
    }
    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body: buf[head_len..total].to_vec(),
    };
    Ok(Parse::Ready { request, consumed: total })
}

/// Canonical reason phrases for the statuses this tier answers with.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes one response with an exact `Content-Length` (the tier
/// never chunks) and an explicit `Connection` header.
pub fn response(status: u16, body: &[u8], close: bool, extra: &[(&str, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", status_text(status)).as_bytes());
    out.extend_from_slice(b"content-type: application/json\r\n");
    out.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(if close {
        b"connection: close\r\n".as_slice()
    } else {
        b"connection: keep-alive\r\n"
    });
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// The JSON error body every rejection carries:
/// `{"error": CODE, "detail": ..., EXTRA}`.
pub fn error_body(code: &str, detail: &str, extra: &[(&str, String)]) -> Vec<u8> {
    let mut body = format!(
        "{{\"error\": \"{}\", \"detail\": \"{}\"",
        decss_solver::json::escape(code),
        decss_solver::json::escape(detail)
    );
    for (name, value) in extra {
        body.push_str(&format!(", \"{name}\": {value}"));
    }
    body.push('}');
    body.push('\n');
    body.into_bytes()
}

/// Renders a structured rejection as a full response.
pub fn error_response(err: &HttpError, code: &str, close: bool) -> Vec<u8> {
    response(err.status, &error_body(code, &err.detail, &[]), close, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Parse, HttpError> {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_get_and_a_post_with_body() {
        let get = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        match parse(get).unwrap() {
            Parse::Ready { request, consumed } => {
                assert_eq!(request.method, "GET");
                assert_eq!(request.target, "/healthz");
                assert!(request.http11);
                assert_eq!(request.header("host"), Some("x"));
                assert_eq!(consumed, get.len());
                assert!(!request.wants_close());
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        let post = b"POST /solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODYextra";
        match parse(post).unwrap() {
            Parse::Ready { request, consumed } => {
                assert_eq!(request.body, b"BODY");
                assert_eq!(consumed, post.len() - 5, "pipelined bytes stay in the buffer");
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn every_prefix_of_a_valid_request_is_need_more() {
        let full = b"POST /jobs HTTP/1.1\r\nx-decss-client: a\r\ncontent-length: 6\r\n\r\nabcdef";
        for cut in 0..full.len() {
            match parse(&full[..cut]) {
                Ok(Parse::NeedMore) => {}
                other => panic!("prefix of {cut} bytes: expected NeedMore, got {other:?}"),
            }
        }
        assert!(matches!(parse(full), Ok(Parse::Ready { .. })));
    }

    #[test]
    fn structured_rejections() {
        let cases: &[(&[u8], u16)] = &[
            (b"get /x HTTP/1.1\r\n\r\n", 400),             // lowercase method
            (b"GET x HTTP/1.1\r\n\r\n", 400),              // target without /
            (b"GET /x HTTP/2.0\r\n\r\n", 505),             // unsupported version
            (b"GET /x HTTP/1.1 extra\r\n\r\n", 400),       // 4-part request line
            (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", 400), // header without colon
            (b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n", 400), // space in header name
            (b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 400),
            (
                b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\n",
                400,
            ),
            (b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
            (b"POST /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 413),
            (b"GET /x\xff HTTP/1.1\r\n\r\n", 400), // non-UTF-8 head
        ];
        for (bytes, status) in cases {
            match parse(bytes) {
                Err(e) => {
                    assert_eq!(e.status, *status, "input {:?}", String::from_utf8_lossy(bytes))
                }
                other => panic!("expected {status}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_heads_reject_instead_of_buffering() {
        let limits = Limits { max_head_bytes: 64, ..Limits::default() };
        // No terminator and already past the cap: reject now.
        let flood = vec![b'A'; 65];
        assert_eq!(parse_request(&flood, &limits).unwrap_err().status, 431);
        // Terminator present but past the cap: same verdict.
        let mut long = b"GET /x HTTP/1.1\r\nh: ".to_vec();
        long.extend(std::iter::repeat_n(b'v', 64));
        long.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&long, &limits).unwrap_err().status, 431);
        // Under the cap and unterminated: still a prefix.
        assert!(matches!(
            parse_request(b"GET /x HT", &limits).unwrap(),
            Parse::NeedMore
        ));
    }

    #[test]
    fn header_count_is_capped() {
        let limits = Limits { max_headers: 3, ..Limits::default() };
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..4 {
            req.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&req, &limits).unwrap_err().status, 431);
    }

    #[test]
    fn connection_semantics() {
        let close = b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n";
        let old = b"GET / HTTP/1.0\r\n\r\n";
        let old_keep = b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n";
        for (bytes, wants_close) in [(close.as_slice(), true), (old, true), (old_keep, false)] {
            match parse(bytes).unwrap() {
                Parse::Ready { request, .. } => assert_eq!(request.wants_close(), wants_close),
                other => panic!("expected Ready, got {other:?}"),
            }
        }
    }

    #[test]
    fn responses_frame_exactly() {
        let body =
            error_body("overloaded", "job queue is full", &[("retry_after_ms", "40".into())]);
        let bytes = response(429, &body, true, &[]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains(&format!("content-length: {}\r\n", body.len())));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\"retry_after_ms\": 40}\n"));
    }
}
