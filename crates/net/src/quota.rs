//! Per-client token-bucket quotas, keyed by the `x-decss-client`
//! request header (clients without one share the `"anon"` bucket).
//!
//! Each bucket refills continuously at `refill_per_sec` tokens up to a
//! `burst` cap; a job admission costs one token. A denied admission
//! returns how long the client must wait for the next token — the
//! `retry_after_ms` the 429 response carries.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Sizing of every client's bucket.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Steady-state admissions per second per client.
    pub refill_per_sec: f64,
    /// Bucket capacity: how many admissions a client can burst.
    pub burst: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig { refill_per_sec: 50.0, burst: 20.0 }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The table of per-client buckets.
pub struct QuotaTable {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl QuotaTable {
    /// An empty table; buckets materialize full on first sight of a
    /// client id.
    pub fn new(config: QuotaConfig) -> Self {
        QuotaTable { config, buckets: Mutex::new(HashMap::new()) }
    }

    /// Tries to take one token from `client`'s bucket. On refusal,
    /// returns the milliseconds until a token will be available.
    pub fn admit(&self, client: &str) -> Result<(), u64> {
        self.admit_at(client, Instant::now())
    }

    /// [`admit`](QuotaTable::admit) against an explicit clock (tests).
    pub fn admit_at(&self, client: &str, now: Instant) -> Result<(), u64> {
        let mut buckets = self.buckets.lock().expect("quota lock");
        let bucket = buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket { tokens: self.config.burst, last: now });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.refill_per_sec).min(self.config.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait_ms = (deficit / self.config.refill_per_sec.max(1e-9) * 1e3).ceil() as u64;
            Err(wait_ms.max(1))
        }
    }

    /// Distinct clients seen so far.
    pub fn clients(&self) -> usize {
        self.buckets.lock().expect("quota lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_refill() {
        let table = QuotaTable::new(QuotaConfig { refill_per_sec: 10.0, burst: 3.0 });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(table.admit_at("a", t0), Ok(()));
        }
        // Bucket empty: the wait for one token at 10/s is 100 ms.
        let wait = table.admit_at("a", t0).unwrap_err();
        assert!((90..=110).contains(&wait), "wait = {wait}");
        // 150 ms later a token has refilled.
        assert_eq!(table.admit_at("a", t0 + Duration::from_millis(150)), Ok(()));
    }

    #[test]
    fn clients_are_isolated() {
        let table = QuotaTable::new(QuotaConfig { refill_per_sec: 1.0, burst: 1.0 });
        let t0 = Instant::now();
        assert_eq!(table.admit_at("a", t0), Ok(()));
        assert!(table.admit_at("a", t0).is_err(), "a's bucket is dry");
        assert_eq!(table.admit_at("b", t0), Ok(()), "b has its own bucket");
        assert_eq!(table.clients(), 2);
    }

    #[test]
    fn refill_caps_at_burst() {
        let table = QuotaTable::new(QuotaConfig { refill_per_sec: 1000.0, burst: 2.0 });
        let t0 = Instant::now();
        assert_eq!(table.admit_at("a", t0), Ok(()));
        // An hour of refill still only holds `burst` tokens.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(table.admit_at("a", later), Ok(()));
        assert_eq!(table.admit_at("a", later), Ok(()));
        assert!(table.admit_at("a", later).is_err());
    }
}
