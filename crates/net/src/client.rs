//! A small blocking HTTP/1.1 client for the tier's own tests, the
//! chaos harness, and scripted probes — one connection per request
//! (`Connection: close`), strict response framing via
//! `Content-Length`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The first value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The client: an address, an optional client id (sent as
/// `x-decss-client` for quota accounting), and an I/O timeout.
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    client_id: Option<String>,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` with a 10 s timeout and no client id.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, client_id: None, timeout: Duration::from_secs(10) }
    }

    /// Sets the `x-decss-client` id.
    pub fn with_client_id(mut self, id: impl Into<String>) -> Self {
        self.client_id = Some(id.into());
        self
    }

    /// Sets the per-request I/O timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> Result<Response, String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a body.
    pub fn post(&self, path: &str, body: &str) -> Result<Response, String> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// One request-response round trip on a fresh connection.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, String> {
        let mut stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: decss\r\nconnection: close\r\n");
        if let Some(id) = &self.client_id {
            head.push_str(&format!("x-decss-client: {id}\r\n"));
        }
        let body = body.unwrap_or(b"");
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes()).map_err(|e| format!("write: {e}"))?;
        stream.write_all(body).map_err(|e| format!("write: {e}"))?;
        read_response(&mut stream)
    }
}

/// Reads and parses one response from `stream`.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return Err("response head exceeds 64 KiB".into());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(format!("connection closed mid-head ({} bytes)", buf.len())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    };
    let head = std::str::from_utf8(&buf[..head_len - 4])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response head")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or("response lacks content-length")?;
    let mut body = buf[head_len..].to_vec();
    while body.len() < length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(format!(
                    "connection closed mid-body ({} of {length} bytes)",
                    body.len()
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    body.truncate(length);
    Ok(Response { status, headers, body })
}

/// Sends raw bytes on a fresh connection — the chaos harness's tool
/// for truncated, malformed, and stalled requests. Returns whatever the
/// server sent back before closing (possibly nothing).
pub fn raw_exchange(
    addr: SocketAddr,
    payload: &[u8],
    timeout: Duration,
) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    if !payload.is_empty() {
        stream.write_all(payload).map_err(|e| format!("write: {e}"))?;
    }
    let mut out = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(out),
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            // A timeout just ends the observation window.
            Err(_) => return Ok(out),
        }
    }
}
