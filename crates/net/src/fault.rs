//! Deterministic fault injection for the network tier — the test-only
//! knob the chaos harness turns to prove the server's accounting
//! survives I/O failures it cannot reproduce on demand from outside
//! (accept-time errors, mid-write connection loss on the *server*
//! side).
//!
//! A [`FaultPlan`] names global accept/write indices to fail; the
//! default plan is empty (production behavior). Faults are injected at
//! exactly two seams:
//!
//! * **accept-time**: the accepted socket is dropped before it reaches
//!   the connection pool — as if the kernel returned `ECONNABORTED`;
//! * **write-time**: a response write sends only half its bytes and
//!   then severs the connection — as if the peer vanished mid-reply.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which global accept/write events to fail. Indices count from 0 over
/// the server's lifetime.
#[derive(Clone, Default, Debug)]
pub struct FaultPlan {
    /// Accept indices whose connection is dropped before serving.
    pub accept_errors: Vec<u64>,
    /// Response-write indices that half-write then sever.
    pub write_errors: Vec<u64>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan failing the given accept indices.
    pub fn failing_accepts(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            accept_errors: indices.into_iter().collect(),
            ..FaultPlan::default()
        }
    }

    /// A plan failing the given response-write indices.
    pub fn failing_writes(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            write_errors: indices.into_iter().collect(),
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.accept_errors.is_empty() && self.write_errors.is_empty()
    }
}

/// Runtime counters walking a [`FaultPlan`]: each accept/write draws
/// the next index and asks the plan whether to fail it.
#[derive(Default, Debug)]
pub struct FaultClock {
    accepts: AtomicU64,
    writes: AtomicU64,
}

impl FaultClock {
    /// Draws the next accept index and reports whether to drop it.
    pub fn fail_this_accept(&self, plan: &FaultPlan) -> bool {
        let index = self.accepts.fetch_add(1, Ordering::Relaxed);
        plan.accept_errors.contains(&index)
    }

    /// Draws the next write index and reports whether to sever it.
    pub fn fail_this_write(&self, plan: &FaultPlan) -> bool {
        let index = self.writes.fetch_add(1, Ordering::Relaxed);
        plan.write_errors.contains(&index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_fire_at_their_indices_only() {
        let plan = FaultPlan { accept_errors: vec![1], write_errors: vec![0, 2] };
        let clock = FaultClock::default();
        assert!(!clock.fail_this_accept(&plan)); // accept 0
        assert!(clock.fail_this_accept(&plan)); // accept 1
        assert!(!clock.fail_this_accept(&plan)); // accept 2
        assert!(clock.fail_this_write(&plan)); // write 0
        assert!(!clock.fail_this_write(&plan)); // write 1
        assert!(clock.fail_this_write(&plan)); // write 2
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::failing_accepts([3]).is_empty());
        assert!(!FaultPlan::failing_writes([3]).is_empty());
    }
}
