//! The fault-injection / chaos harness behind `decss netstress`.
//!
//! Spins a real [`NetServer`] on an ephemeral port, hammers it from
//! seeded chaos threads mixing well-formed traffic with abuse —
//! truncated requests, stalled writers, garbage bytes, mid-response
//! disconnects, duplicate storms, overload waves — optionally under an
//! injected [`FaultPlan`], then drains and verifies the robustness
//! contract:
//!
//! * every completed solve's report is **byte-identical** to a fresh
//!   single-threaded solve of the same spec (modulo `wall_ms` and the
//!   `cache_hit` flag);
//! * well-formed traffic only ever sees 200/422/429/503 — never a
//!   hang, never an unstructured failure;
//! * no connection-slot leaks (`accepted == conns_closed` after drain);
//! * the per-client admission ledger matches the service's audited job
//!   count exactly;
//! * the drain itself is clean (the service log audit passes and the
//!   queue is empty).

use crate::client::{raw_exchange, Client};
use crate::fault::FaultPlan;
use crate::jobs::{self, FileAccess};
use crate::server::{NetConfig, NetServer, NetSummary};
use decss_service::{JobId, JobOutcome, ServiceConfig};
use decss_solver::SolverSession;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Chaos run parameters.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Seed for every chaos thread's operation stream.
    pub seed: u64,
    /// Total chaos operations across all threads.
    pub ops: usize,
    /// Concurrent chaos threads.
    pub threads: usize,
    /// The network tier under test.
    pub net: NetConfig,
    /// The solve pool under test.
    pub service: ServiceConfig,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            seed: 0,
            ops: 120,
            threads: 6,
            // Small pools and a short read deadline: shed paths and the
            // slow-loris cutoff actually fire during the run.
            net: NetConfig::default()
                .max_connections(6)
                .read_timeout(Duration::from_millis(400))
                .write_timeout(Duration::from_millis(800)),
            service: ServiceConfig::default()
                .workers(2)
                .queue_capacity(3)
                .cache_capacity(64),
        }
    }
}

/// What one chaos run observed and concluded.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Operations attempted.
    pub ops: usize,
    /// Well-formed solves answered 200.
    pub solves_ok: u64,
    /// Solve-level errors answered 422.
    pub solve_errors: u64,
    /// 429 responses (shed or quota).
    pub shed_429: u64,
    /// 503 responses (busy / draining).
    pub refused_503: u64,
    /// Structured 4xx/5xx answers to malformed input.
    pub structured_rejections: u64,
    /// Client-side I/O failures (expected under injected faults and
    /// self-inflicted disconnects).
    pub io_errors: u64,
    /// Contract violations — an empty list is the pass verdict.
    pub violations: Vec<String>,
    /// The drain accounting (populated on every run that binds).
    pub summary: Option<NetSummary>,
}

impl ChaosReport {
    /// Whether the run upheld the whole contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "netstress: {} ops | {} ok, {} solve-errors, {} shed(429), {} refused(503), \
             {} structured rejections, {} client io errors\n",
            self.ops,
            self.solves_ok,
            self.solve_errors,
            self.shed_429,
            self.refused_503,
            self.structured_rejections,
            self.io_errors,
        );
        if let Some(summary) = &self.summary {
            out.push_str(&format!(
                "netstress: accepted {} conns, closed {}, slot leaks {}, audited jobs {:?}, \
                 client-ledger jobs {}\n",
                summary.net.accepted,
                summary.net.conns_closed,
                summary.slot_leaks(),
                summary.service.audit,
                summary.accepted_jobs(),
            ));
        }
        match self.violations.len() {
            0 => out.push_str("netstress: PASS (no contract violations)\n"),
            n => {
                out.push_str(&format!("netstress: FAIL ({n} violations)\n"));
                for v in &self.violations {
                    out.push_str(&format!("  - {v}\n"));
                }
            }
        }
        out
    }
}

/// Everything the chaos threads observe, merged at the end into the
/// report: classification counters, contract violations, and every
/// (spec, row) pair a 200 handed back — the byte-identity evidence.
#[derive(Default)]
struct Observed {
    solves_ok: u64,
    solve_errors: u64,
    shed_429: u64,
    refused_503: u64,
    structured_rejections: u64,
    io_errors: u64,
    recorded: Vec<(String, String)>,
    violations: Vec<String>,
}

/// A well-formed single-job document the chaos mix posts to `/solve`.
/// Deliberately no `"shards"` knob: the service echoes its worker
/// pool's shard count in `params`, which a fresh single-threaded solve
/// would render differently and break the byte-identity check.
fn job_line(rng: &mut StdRng, heavy: bool) -> String {
    let algorithm = ["improved", "greedy", "shortcut"][rng.gen_range(0usize..3)];
    let n = if heavy {
        900
    } else {
        [16usize, 36, 64][rng.gen_range(0usize..3)]
    };
    let seed = rng.gen_range(0u64..3);
    format!(
        "{{\"algorithm\": \"{algorithm}\", \"family\": \"grid\", \"n\": {n}, \"seed\": {seed}}}"
    )
}

/// Removes `"key": value` (a flat number/bool value) plus one adjacent
/// comma from a JSON row — the canonicalization that makes service
/// rows comparable to fresh solves (`wall_ms` varies, `cache_hit` is
/// service-only context).
fn strip_field(row: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(start) = row.find(&needle) else {
        return row.to_string();
    };
    let after = &row[start + needle.len()..];
    let value_len = after.find([',', '}']).unwrap_or(after.len());
    let mut end = start + needle.len() + value_len;
    if row[end..].starts_with(',') {
        end += 1;
        if row[end..].starts_with(' ') {
            end += 1;
        }
        format!("{}{}", &row[..start], &row[end..])
    } else {
        // Last field: eat the comma before it instead.
        let head = row[..start].trim_end();
        let start = head.strip_suffix(',').map_or(start, |h| h.len());
        format!("{}{}", &row[..start], &row[end..])
    }
}

fn canonical_row(row: &str) -> String {
    strip_field(&strip_field(row.trim(), "wall_ms"), "cache_hit")
}

/// One `/solve` POST, classified into the observation counters; 200
/// rows are recorded for the byte-identity audit.
fn post_solve(client: &Client, line: &str, observed: &Mutex<Observed>) {
    match client.post("/solve", line) {
        Ok(resp) => {
            let mut obs = observed.lock().expect("observed lock");
            match resp.status {
                200 => {
                    obs.solves_ok += 1;
                    obs.recorded.push((line.to_string(), resp.text()));
                }
                422 => obs.solve_errors += 1,
                429 => obs.shed_429 += 1,
                503 => obs.refused_503 += 1,
                other => obs
                    .violations
                    .push(format!("well-formed solve answered {other}: {}", resp.text().trim())),
            }
        }
        Err(_) => {
            // Injected write faults and overload can sever a response;
            // that is an observation, not a violation — the accounting
            // invariants after drain are the real check.
            observed.lock().expect("observed lock").io_errors += 1;
        }
    }
}

/// Opens a connection, trickles a partial request head, then stalls
/// past the server's read deadline; drains whatever the server says
/// (408 expected) so the reset does not race the server's send.
fn stalled_writer(addr: SocketAddr, read_timeout: Duration) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(read_timeout + Duration::from_millis(700)));
    let _ = stream.write_all(b"POST /solve HTT");
    std::thread::sleep(read_timeout + Duration::from_millis(150));
    let mut sink = [0u8; 1024];
    let _ = stream.read(&mut sink);
}

/// Runs the chaos suite against a self-hosted server and returns the
/// verdict.
pub fn chaos(config: StressConfig) -> ChaosReport {
    let mut report = ChaosReport { ops: config.ops, ..ChaosReport::default() };
    let handle = match NetServer::start("127.0.0.1:0", config.net.clone(), config.service.clone()) {
        Ok(h) => h,
        Err(e) => {
            report.violations.push(format!("failed to start server: {e}"));
            return report;
        }
    };
    let addr = handle.addr();
    let observed = Arc::new(Mutex::new(Observed::default()));

    let threads = config.threads.max(1);
    let per_thread = config.ops.div_ceil(threads);
    let mut chaos_threads = Vec::new();
    for t in 0..threads {
        let observed = Arc::clone(&observed);
        let seed = config.seed ^ (0x9e37_79b9 + t as u64);
        let read_timeout = config.net.read_timeout;
        chaos_threads.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let client = Client::new(addr)
                .with_client_id(format!("chaos-{}", t % 3))
                .with_timeout(Duration::from_secs(30));
            for _ in 0..per_thread {
                let roll = rng.gen_range(0u32..100);
                if roll < 40 {
                    // Well-formed solve.
                    let line = job_line(&mut rng, false);
                    post_solve(&client, &line, &observed);
                } else if roll < 50 {
                    // Duplicate storm: the same spec back to back — the
                    // coalescing cache's chance to shine, and identical
                    // answers either way.
                    let line = job_line(&mut rng, false);
                    for _ in 0..3 {
                        post_solve(&client, &line, &observed);
                    }
                } else if roll < 60 {
                    // Overload wave: heavier solves in quick succession
                    // to force queue-full sheds.
                    let line = job_line(&mut rng, true);
                    for _ in 0..2 {
                        post_solve(&client, &line, &observed);
                    }
                } else if roll < 72 {
                    // Truncated request: a prefix of a valid POST, then
                    // vanish. The server must time the slot out, not
                    // leak it.
                    let line = job_line(&mut rng, false);
                    let full = format!(
                        "POST /solve HTTP/1.1\r\ncontent-length: {}\r\n\r\n{line}",
                        line.len()
                    );
                    let cut = rng.gen_range(1usize..full.len());
                    let _ = raw_exchange(addr, &full.as_bytes()[..cut], Duration::from_millis(30));
                } else if roll < 80 {
                    // Garbage bytes: the answer must be a structured
                    // 4xx/5xx or a plain close — never half a reply.
                    let len = rng.gen_range(1usize..48);
                    let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
                    match raw_exchange(addr, &garbage, read_timeout + Duration::from_millis(500)) {
                        Ok(bytes) if bytes.is_empty() => {} // timed out / dropped: fine
                        Ok(bytes) => {
                            let text = String::from_utf8_lossy(&bytes).into_owned();
                            let structured =
                                text.starts_with("HTTP/1.1 4") || text.starts_with("HTTP/1.1 5");
                            let mut obs = observed.lock().expect("observed lock");
                            if structured {
                                obs.structured_rejections += 1;
                            } else {
                                let head: String = text.chars().take(60).collect();
                                obs.violations.push(format!(
                                    "garbage input got a non-structured reply: {head:?}"
                                ));
                            }
                        }
                        Err(_) => {
                            observed.lock().expect("observed lock").io_errors += 1;
                        }
                    }
                } else if roll < 88 {
                    // Stalled writer (slow loris): a few head bytes then
                    // silence past the read deadline. The server must
                    // cut the connection loose (408) — a hang here
                    // stalls this thread and fails the run's own
                    // deadline.
                    stalled_writer(addr, read_timeout);
                } else {
                    // Mid-response disconnect: ask for /stats and slam
                    // the connection shut without reading the reply.
                    if let Ok(mut stream) = TcpStream::connect(addr) {
                        let _ =
                            stream.write_all(b"GET /stats HTTP/1.1\r\nconnection: close\r\n\r\n");
                        drop(stream);
                    }
                }
            }
        }));
    }
    for thread in chaos_threads {
        if thread.join().is_err() {
            report.violations.push("a chaos thread panicked".into());
        }
    }

    // Liveness after the storm: the server must still answer cleanly.
    let probe = Client::new(addr).with_timeout(Duration::from_secs(5));
    let alive = (0..3).any(|_| matches!(probe.get("/healthz"), Ok(r) if r.status == 200));
    if !alive {
        report
            .violations
            .push("server unresponsive to /healthz after the chaos mix".into());
    }

    let summary = handle.drain(Duration::from_millis(20));

    let observed = std::mem::take(&mut *observed.lock().expect("observed lock"));
    report.solves_ok = observed.solves_ok;
    report.solve_errors = observed.solve_errors;
    report.shed_429 = observed.shed_429;
    report.refused_503 = observed.refused_503;
    report.structured_rejections = observed.structured_rejections;
    report.io_errors = observed.io_errors;
    report.violations.extend(observed.violations);

    // Byte-identity: every 200 row must match a fresh single-threaded
    // solve of the same spec, modulo wall_ms and cache_hit. Dedup by
    // spec line — duplicates re-solve identically.
    let mut fresh_rows: HashMap<String, Option<String>> = HashMap::new();
    let mut session = SolverSession::new();
    for (line, row) in &observed.recorded {
        if !fresh_rows.contains_key(line) {
            let doc = format!("[\n{line}\n]");
            let fresh = match jobs::parse_job_specs(&doc, FileAccess::Denied) {
                Ok(mut specs) => {
                    let spec = specs.remove(0);
                    match session.solve(&spec.graph, &spec.req) {
                        Ok(r) => {
                            let outcome = JobOutcome { job: JobId(0), report: r, cache_hit: false };
                            Some(canonical_row(&jobs::job_row(0, &spec, &Ok(outcome))))
                        }
                        Err(e) => {
                            report.violations.push(format!(
                                "spec {line} solved over HTTP but failed fresh: {e}"
                            ));
                            None
                        }
                    }
                }
                Err(e) => {
                    report.violations.push(format!("recorded spec no longer parses: {e}"));
                    None
                }
            };
            fresh_rows.insert(line.clone(), fresh);
        }
        let Some(Some(fresh)) = fresh_rows.get(line) else {
            continue;
        };
        let served = canonical_row(row);
        if &served != fresh {
            report.violations.push(format!(
                "report corruption for {line}:\n  served: {served}\n  fresh:  {fresh}"
            ));
        }
    }

    // Accounting invariants.
    if summary.slot_leaks() != 0 {
        report.violations.push(format!(
            "connection slot leak: accepted {} != closed {}",
            summary.net.accepted, summary.net.conns_closed
        ));
    }
    if summary.net.conns_open != 0 {
        report.violations.push(format!(
            "{} connections still open after drain",
            summary.net.conns_open
        ));
    }
    match &summary.service.audit {
        Ok(audited) => {
            let ledger = summary.accepted_jobs();
            if *audited as u64 != ledger {
                report.violations.push(format!(
                    "client ledger ({ledger}) != audited service jobs ({audited})"
                ));
            }
            if summary.service.stats.submitted != ledger {
                report.violations.push(format!(
                    "service submitted ({}) != client ledger ({ledger})",
                    summary.service.stats.submitted
                ));
            }
        }
        Err(e) => report.violations.push(format!("service log audit failed: {e}")),
    }
    if summary.service.stats.queue_depth != 0 {
        report.violations.push(format!(
            "drain left {} jobs queued",
            summary.service.stats.queue_depth
        ));
    }
    report.summary = Some(summary);
    report
}

/// The seeded fault plan `decss netstress --faults` installs: early
/// accept drops and write severs, so the final liveness probe and the
/// drain run past them.
pub fn default_fault_plan() -> FaultPlan {
    FaultPlan { accept_errors: vec![2, 9, 23], write_errors: vec![3, 11, 28] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_field_handles_middle_and_tail() {
        let row = r#"{"a": 1, "wall_ms": 3.25, "b": true}"#;
        assert_eq!(strip_field(row, "wall_ms"), r#"{"a": 1, "b": true}"#);
        let tail = r#"{"a": 1, "wall_ms": 3.25}"#;
        assert_eq!(strip_field(tail, "wall_ms"), r#"{"a": 1}"#);
        assert_eq!(strip_field(row, "absent"), row);
        let both = r#"{"cache_hit": false, "wall_ms": 9}"#;
        assert_eq!(canonical_row(both), r#"{}"#);
    }

    #[test]
    fn a_small_chaos_run_upholds_the_contract() {
        let config = StressConfig { seed: 7, ops: 24, threads: 3, ..StressConfig::default() };
        let report = chaos(config);
        assert!(report.passed(), "{}", report.render());
        assert!(
            report.solves_ok > 0,
            "the mix must land some real solves\n{}",
            report.render()
        );
    }
}
