//! SIGTERM / SIGINT → graceful drain, without a `libc` dependency.
//!
//! The workspace vendors no FFI crate, so the one syscall the network
//! tier needs — installing a signal handler — is declared directly.
//! The handler itself only stores into a static `AtomicBool`
//! (async-signal-safe); the serve loop polls the flag and runs the
//! ordinary drain path. On non-unix targets installation is a no-op
//! and shutdown is driven programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGTERM or SIGINT.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since
/// [`install_handlers`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the shutdown flag programmatically — the non-unix fallback,
/// and what tests use instead of delivering real signals.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests that exercise repeated drains).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)] // the workspace-wide deny is lifted for exactly this shim
mod imp {
    use super::{Ordering, SHUTDOWN};

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the entire async-signal-safe budget.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (unix; elsewhere a no-op).
/// Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_flag_round_trips() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
        install_handlers(); // must not crash; real delivery is CI's smoke
    }
}
