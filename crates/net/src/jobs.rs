//! The `decss serve` job/report schema, as a library.
//!
//! The CLI's file mode (`decss serve --jobs`) and the network tier
//! (`POST /solve`, `POST /jobs`) speak *exactly* the same dialect —
//! this module is that dialect, moved out of the binary so both fronts
//! share one parser and one renderer: a JSON array with one job object
//! per line in, a `{"service": ..., "jobs": [...]}` document out.

use decss_graphs::{gen, io, EdgeId, Graph, VertexId};
use decss_service::{JobResult, Stats};
use decss_solver::json::{escape, number_field, string_array_field, string_field};
use decss_solver::{GraphDelta, SolveRequest};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One parsed job spec from a jobs document: the instance, the request,
/// and the echo fields its output row carries.
#[derive(Debug)]
pub struct JobSpec {
    /// Family label or input path (row echo).
    pub family: String,
    /// Requested instance size (row echo; a file instance echoes its n).
    pub requested_n: usize,
    /// The run seed (row echo).
    pub seed: u64,
    /// The instance (shared across identical specs in one document).
    pub graph: Arc<Graph>,
    /// The solve request the job runs.
    pub req: SolveRequest,
}

/// Parses one delta spec — the compact `rw(edge,weight)` / `del(edge)`
/// / `ins(u,v,weight)` vocabulary (long names `reweight` / `delete` /
/// `insert` also accepted) that `params_echo` renders and job documents
/// carry in their `"deltas"` arrays.
pub fn parse_delta(spec: &str) -> Result<GraphDelta, String> {
    let spec = spec.trim();
    let bad =
        || format!("bad delta {spec:?} (expected rw(edge,weight), del(edge), or ins(u,v,weight))");
    let (op, rest) = spec.split_once('(').ok_or_else(bad)?;
    let args: Vec<u64> = rest
        .strip_suffix(')')
        .ok_or_else(bad)?
        .split(',')
        .map(|x| x.trim().parse::<u64>().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    match (op.trim(), args.as_slice()) {
        ("rw" | "reweight", &[edge, weight]) => {
            Ok(GraphDelta::Reweight { edge: EdgeId(edge as u32), weight })
        }
        ("del" | "delete", &[edge]) => Ok(GraphDelta::Delete { edge: EdgeId(edge as u32) }),
        ("ins" | "insert", &[u, v, weight]) => {
            Ok(GraphDelta::Insert { u: VertexId(u as u32), v: VertexId(v as u32), weight })
        }
        _ => Err(bad()),
    }
}

/// [`parse_delta`] over a list.
pub fn parse_deltas<'a>(specs: impl Iterator<Item = &'a str>) -> Result<Vec<GraphDelta>, String> {
    specs.map(parse_delta).collect()
}

/// Splits a `--deltas` list on the commas *between* specs (the commas
/// inside `rw(3,9)` stay put).
pub fn split_delta_list(list: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in list.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(list[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(list[start..].trim());
    out.retain(|s| !s.is_empty());
    out
}

/// Builds a generated instance by family label (the `gen` vocabulary:
/// every `gen::Family`, every atlas family, plus the extra named
/// constructions).
pub fn instance_by_label(family: &str, n: usize, w: u64, seed: u64) -> Result<Graph, String> {
    Ok(match family {
        "broom" => gen::broom_two_ec(n, w, seed),
        "hard-sqrt" => gen::hard_sqrt_two_ec(n, w, seed),
        "tree-chords" => gen::tree_plus_chords(n, n / 2, w, seed),
        other => {
            if let Some(fam) = gen::ATLAS_ALL.into_iter().find(|f| f.label() == other) {
                // The generator itself asserts this; a served job must
                // get an error row, not a worker panic.
                if n < 64 {
                    return Err(format!("atlas family {other} needs n >= 64, got {n}"));
                }
                return Ok(fam.instance(n, w, seed));
            }
            let fam =
                gen::Family::ALL
                    .into_iter()
                    .find(|f| f.label() == other)
                    .ok_or_else(|| {
                        format!(
                        "unknown family {other}; options: {}, {}, broom, hard-sqrt, tree-chords",
                        gen::Family::ALL.map(|f| f.label()).join(", "),
                        gen::ATLAS_ALL.map(|f| f.label()).join(", ")
                    )
                    })?;
            gen::instance(fam, n, w, seed)
        }
    })
}

/// Whether job documents may name `"input"` graph files. The network
/// tier parses with [`FileAccess::Denied`] — a remote client must not
/// be able to probe the server's filesystem; the CLI's file mode keeps
/// [`FileAccess::Allowed`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileAccess {
    /// `"input": "PATH"` specs load the named graph file.
    Allowed,
    /// `"input"` specs are rejected with an explanatory error.
    Denied,
}

/// Parses a jobs document: a JSON array with one job object per line.
/// Each job names an `"algorithm"` plus an instance — either a
/// generated one (`"family"` + `"n"`, optional `"seed"` /
/// `"max_weight"`) or a graph file (`"input"`, subject to `files`) —
/// and optionally the request knobs `"epsilon"`, `"bandwidth"`,
/// `"fail_edges"`, `"shards"`, `"deadline_ms"`, and `"deltas"` (an
/// array of `"rw(edge,weight)"` / `"del(edge)"` / `"ins(u,v,weight)"`
/// specs mutating the instance before the solve). Identical instance
/// specs share one in-memory graph.
pub fn parse_job_specs(text: &str, files: FileAccess) -> Result<Vec<JobSpec>, String> {
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut graphs: HashMap<String, Arc<Graph>> = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        let at = |msg: String| format!("jobs line {}: {msg}", idx + 1);
        if !line.contains("\"algorithm\"") {
            if line.contains('{') {
                return Err(at("job object lacks an \"algorithm\" field".into()));
            }
            continue; // array brackets / blank lines
        }
        specs.push(parse_job_line(line, files, &mut graphs).map_err(at)?);
    }
    if specs.is_empty() {
        return Err(
            "no job specs found (expected a JSON array with one job object per line)".into(),
        );
    }
    Ok(specs)
}

/// Parses one job-object line of the dialect. `graphs` memoizes
/// instances across calls, so identical specs (including a trace's
/// duplicate storms) share one in-memory graph. Shared by
/// [`parse_job_specs`] and the trace replayer ([`crate::trace`]);
/// errors carry no line number — callers add their own context.
pub fn parse_job_line(
    line: &str,
    files: FileAccess,
    graphs: &mut HashMap<String, Arc<Graph>>,
) -> Result<JobSpec, String> {
    if line.matches('{').count() > 1 {
        // A compacted array (e.g. `jq -c` output) would otherwise
        // silently collapse into one job built from the first
        // occurrence of each field.
        return Err(
            "multiple job objects on one line; the format is one job object per line".into(),
        );
    }
    let algorithm = string_field(line, "algorithm")
        .ok_or_else(|| "malformed \"algorithm\" field".to_string())?;
    // A key that is present but fails the strict `"key": value`
    // scan must error, not silently drop the knob — a swallowed
    // `fail_edges` or `deadline_ms` changes what the job *means*.
    let num = |key: &str| -> Result<Option<f64>, String> {
        match number_field(line, key) {
            Some(v) => Ok(Some(v)),
            None if line.contains(&format!("\"{key}\"")) => {
                Err(format!("malformed \"{key}\" field (expected `\"{key}\": <number>`)"))
            }
            None => Ok(None),
        }
    };
    let mut req = SolveRequest::new(&algorithm);
    if let Some(e) = num("epsilon")? {
        req = req.epsilon(e);
    }
    if let Some(b) = num("bandwidth")? {
        req = req.bandwidth(b as u32);
    }
    if let Some(k) = num("fail_edges")? {
        req = req.fail_edges(k as u32);
    }
    if let Some(s) = num("shards")? {
        req = req.shards(s as usize);
    }
    if let Some(ms) = num("deadline_ms")? {
        req = req.deadline(Duration::from_millis(ms as u64));
    }
    match string_array_field(line, "deltas") {
        Some(specs) => {
            req = req.deltas(parse_deltas(specs.iter().map(String::as_str))?);
        }
        None if line.contains("\"deltas\"") => {
            return Err(
                "malformed \"deltas\" field (expected `\"deltas\": [\"rw(edge,weight)\", ...]`)"
                    .into(),
            )
        }
        None => {}
    }
    let seed = match num("seed")? {
        Some(s) => {
            req = req.seed(s as u64);
            s as u64
        }
        None => 0,
    };
    if line.contains("\"input\"") && string_field(line, "input").is_none() {
        return Err("malformed \"input\" field (expected `\"input\": \"PATH\"`)".into());
    }
    let (family, requested_n, graph) = if let Some(path) = string_field(line, "input") {
        if files == FileAccess::Denied {
            return Err(format!(
                "\"input\" graph files are not served over the network (got {path:?}); \
                 use \"family\" + \"n\""
            ));
        }
        let graph = match graphs.get(&path) {
            Some(g) => Arc::clone(g),
            None => {
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
                let g =
                    Arc::new(io::parse_graph(&text).map_err(|e| format!("parsing {path}: {e}"))?);
                graphs.insert(path.clone(), Arc::clone(&g));
                g
            }
        };
        (path, graph.n(), graph)
    } else {
        let family = string_field(line, "family")
            .ok_or_else(|| "job needs \"family\" + \"n\" or \"input\"".to_string())?;
        let n =
            num("n")?.ok_or_else(|| format!("family {family:?} needs an \"n\" field"))? as usize;
        let w = num("max_weight")?.map_or(64, |w| w as u64);
        let memo = format!("{family}:{n}:{w}:{seed}");
        let graph = match graphs.get(&memo) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(instance_by_label(&family, n, w, seed)?);
                graphs.insert(memo, Arc::clone(&g));
                g
            }
        };
        (family, n, graph)
    };
    Ok(JobSpec { family, requested_n, seed, graph, req })
}

/// Renders one report row — the schema both `decss serve` output files
/// and HTTP responses carry: echo fields, then either the report or an
/// `"error"` field.
pub fn job_row(index: usize, spec: &JobSpec, result: &JobResult) -> String {
    let echo = format!(
        "\"job\": {index}, \"family\": \"{}\", \"requested_n\": {}, \"seed\": {}",
        escape(&spec.family),
        spec.requested_n,
        spec.seed
    );
    match result {
        Ok(outcome) => format!(
            "    {{{echo}, \"cache_hit\": {}, {}}}",
            outcome.cache_hit,
            outcome.report.json_fields()
        ),
        Err(e) => {
            format!("    {{{echo}, \"error\": \"{}\"}}", escape(&e.to_string()))
        }
    }
}

/// Renders the full batch document: a `"service"` stats header
/// (counters, hit rate, latency histograms, plus the host's core count
/// and per-worker pool cap) and the `"jobs"` rows.
pub fn report_document(stats: &Stats, rows: &[String]) -> String {
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool_cap = (nproc / stats.workers.max(1)).max(1);
    format!(
        "{{\n  \"service\": {{{}, \"nproc\": {nproc}, \"pool_cap\": {pool_cap}}},\n  \"jobs\": [\n{}\n  ]\n}}\n",
        stats.json_fields(),
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_parsing_denies_input_files() {
        let doc = r#"[
{"algorithm": "improved", "input": "/no/such/dir/instance.graph"}
]"#;
        assert!(parse_job_specs(doc, FileAccess::Allowed).is_err_and(|e| e.contains("reading")));
        let err = parse_job_specs(doc, FileAccess::Denied).unwrap_err();
        assert!(err.contains("not served over the network"), "{err}");
    }

    #[test]
    fn generated_specs_share_graphs_and_echo_fields() {
        let doc = r#"[
{"algorithm": "improved", "family": "grid", "n": 36, "seed": 7},
{"algorithm": "greedy", "family": "grid", "n": 36, "seed": 7}
]"#;
        let specs = parse_job_specs(doc, FileAccess::Denied).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(
            Arc::ptr_eq(&specs[0].graph, &specs[1].graph),
            "identical instances share"
        );
        assert_eq!(
            (specs[0].family.as_str(), specs[0].requested_n, specs[0].seed),
            ("grid", 36, 7)
        );
    }

    #[test]
    fn delta_vocabulary_round_trips() {
        assert_eq!(
            parse_delta("rw(3, 9)").unwrap(),
            GraphDelta::Reweight { edge: EdgeId(3), weight: 9 }
        );
        assert_eq!(parse_delta("del(5)").unwrap(), GraphDelta::Delete { edge: EdgeId(5) });
        assert!(parse_delta("explode(1)").is_err());
        assert_eq!(split_delta_list("rw(3,9), del(5)"), vec!["rw(3,9)", "del(5)"]);
    }
}
