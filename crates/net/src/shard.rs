//! The fingerprint-sharded front tier: one lightweight HTTP process
//! routing jobs across N `decss serve --listen` backends.
//!
//! Routing is **rendezvous hashing** (highest-random-weight) on the
//! job's graph fingerprint: every front tier with the same backend set
//! picks the same owner for a key, and adding or removing a backend
//! only remaps the keys that backend itself owned — the rest of the
//! fleet keeps its warm caches. The scoring function is exposed pure
//! ([`rendezvous_pick`]) so tests can precompute the expected split.
//!
//! Health is tracked two ways: a background probe thread polls each
//! backend's `/ready`, and the routing path marks a backend unhealthy
//! the moment a forward fails (transport error or `503 draining`) and
//! re-routes the job to the next-highest scorer. A draining backend
//! therefore hands its keys off without dropping a single in-flight
//! job — the drain-then-handoff contract pinned by `tests/shard.rs`.

use crate::client::Client;
use crate::http::{self, Limits, Request};
use crate::jobs::{self, FileAccess};
use crate::server::{read_request_with, ReadOutcome};
use decss_service::{JobKey, JobQueue, PushError};
use decss_solver::json::escape;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// FNV-1a over the backend label: the per-backend half of the
/// rendezvous score.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: the bit mixer that turns `label ^ key` into a
/// uniformly distributed score.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `(backend label, fingerprint)`. Pure and
/// stable: the same pair scores the same everywhere, forever (the
/// routing table is a function, not state).
pub fn rendezvous_score(label: &str, fingerprint: u64) -> u64 {
    mix64(fnv64(label) ^ mix64(fingerprint))
}

/// Picks the owner of `fingerprint` among `labels`: the index of the
/// highest [`rendezvous_score`], ties broken by the larger label so the
/// choice is independent of list order. Returns `None` for an empty
/// candidate set.
///
/// The property that makes this the sharding function: removing one
/// label only remaps the keys *that label owned* (every other key's
/// argmax is unchanged), and adding one back restores exactly its own
/// keys.
pub fn rendezvous_pick<'a>(
    labels: impl IntoIterator<Item = &'a str>,
    fingerprint: u64,
) -> Option<usize> {
    labels
        .into_iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            (rendezvous_score(a, fingerprint), *a).cmp(&(rendezvous_score(b, fingerprint), *b))
        })
        .map(|(i, _)| i)
}

/// Knobs of the front tier.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Connection workers (and the connection pool bound).
    pub max_connections: usize,
    /// Per-request read deadline (slow-loris cutoff).
    pub read_timeout: Duration,
    /// Per-response write deadline.
    pub write_timeout: Duration,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: u32,
    /// Parser caps.
    pub limits: Limits,
    /// Cadence of the background `/ready` probe of each backend.
    pub probe_interval: Duration,
    /// I/O timeout for one forwarded request to a backend.
    pub forward_timeout: Duration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            max_connections: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive_requests: 64,
            limits: Limits::default(),
            probe_interval: Duration::from_millis(250),
            forward_timeout: Duration::from_secs(30),
        }
    }
}

impl ShardConfig {
    /// Sets the connection-worker count.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets the backend `/ready` probe cadence.
    pub fn probe_interval(mut self, d: Duration) -> Self {
        self.probe_interval = d;
        self
    }

    /// Sets the per-forward I/O timeout.
    pub fn forward_timeout(mut self, d: Duration) -> Self {
        self.forward_timeout = d;
        self
    }
}

/// One backend as the front tier sees it.
pub struct BackendState {
    addr: SocketAddr,
    label: String,
    healthy: AtomicBool,
    routed: AtomicU64,
    errors: AtomicU64,
}

impl BackendState {
    /// The routing label (the address string as given).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The backend address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the backend is currently considered healthy.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }
}

/// Monotonic counters of the front tier.
#[derive(Default, Debug)]
pub struct ShardCounters {
    /// Connections handed to the pool.
    pub accepted: AtomicU64,
    /// Connections refused with `503 busy`.
    pub refused_busy: AtomicU64,
    /// Requests fully parsed.
    pub requests: AtomicU64,
    /// Jobs forwarded to a backend (first attempt).
    pub routed: AtomicU64,
    /// Jobs re-routed after a backend failure or drain.
    pub rerouted: AtomicU64,
    /// Jobs answered `503 no_backend` (no healthy backend left).
    pub no_backend: AtomicU64,
    /// Keys answered by a different backend than last time — each one
    /// is a warm-cache miss on the new owner (the backend-set changed
    /// underneath the key). Tracked over the most recently seen 4096
    /// keys (`OWNER_MAP_CAP`).
    pub remapped_keys: AtomicU64,
    /// Requests rejected by the parser.
    pub parse_errors: AtomicU64,
    /// Connections cut off at the read deadline.
    pub timeouts: AtomicU64,
    /// Connections the peer abandoned.
    pub hangups: AtomicU64,
    /// Connections fully finished.
    pub conns_closed: AtomicU64,
}

/// A point-in-time copy of [`ShardCounters`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ShardSnapshot {
    /// See [`ShardCounters::accepted`].
    pub accepted: u64,
    /// See [`ShardCounters::refused_busy`].
    pub refused_busy: u64,
    /// See [`ShardCounters::requests`].
    pub requests: u64,
    /// See [`ShardCounters::routed`].
    pub routed: u64,
    /// See [`ShardCounters::rerouted`].
    pub rerouted: u64,
    /// See [`ShardCounters::no_backend`].
    pub no_backend: u64,
    /// See [`ShardCounters::remapped_keys`].
    pub remapped_keys: u64,
    /// See [`ShardCounters::parse_errors`].
    pub parse_errors: u64,
    /// See [`ShardCounters::timeouts`].
    pub timeouts: u64,
    /// See [`ShardCounters::hangups`].
    pub hangups: u64,
    /// See [`ShardCounters::conns_closed`].
    pub conns_closed: u64,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_busy: self.refused_busy.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            no_backend: self.no_backend.load(Ordering::Relaxed),
            remapped_keys: self.remapped_keys.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hangups: self.hangups.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
        }
    }
}

impl ShardSnapshot {
    /// Renders the counters as JSON object fields (no braces).
    pub fn json_fields(&self) -> String {
        format!(
            "\"accepted\": {}, \"refused_busy\": {}, \"requests\": {}, \
             \"routed\": {}, \"rerouted\": {}, \"no_backend\": {}, \
             \"remapped_keys\": {}, \"parse_errors\": {}, \"timeouts\": {}, \
             \"hangups\": {}, \"conns_closed\": {}",
            self.accepted,
            self.refused_busy,
            self.requests,
            self.routed,
            self.rerouted,
            self.no_backend,
            self.remapped_keys,
            self.parse_errors,
            self.timeouts,
            self.hangups,
            self.conns_closed,
        )
    }
}

/// One backend's final accounting in a [`ShardSummary`].
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// The routing label.
    pub label: String,
    /// The backend address.
    pub addr: SocketAddr,
    /// Health at drain time.
    pub healthy: bool,
    /// Jobs this backend answered for the front tier.
    pub routed: u64,
    /// Forward failures charged to this backend.
    pub errors: u64,
}

/// What a completed front-tier drain reports.
#[derive(Debug)]
pub struct ShardSummary {
    /// Final front-tier counters.
    pub net: ShardSnapshot,
    /// Per-backend accounting, in configuration order.
    pub backends: Vec<BackendReport>,
}

impl ShardSummary {
    /// Jobs answered across all backends — equals `net.routed` when no
    /// job was dropped.
    pub fn routed_total(&self) -> u64 {
        self.backends.iter().map(|b| b.routed).sum()
    }
}

/// How many distinct fingerprints the remap detector remembers. Beyond
/// the cap, *new* keys stop being tracked (known keys keep updating) —
/// the counter stays a lower bound instead of the map growing without
/// bound.
const OWNER_MAP_CAP: usize = 4096;

/// The front-tier state shared by the accept loop, connection workers,
/// and the probe thread.
pub struct ShardServer {
    config: ShardConfig,
    addr: SocketAddr,
    backends: Vec<BackendState>,
    conns: JobQueue<TcpStream>,
    draining: AtomicBool,
    stop_accept: AtomicBool,
    stop_probe: AtomicBool,
    counters: ShardCounters,
    /// Last backend index that answered each fingerprint (bounded by
    /// [`OWNER_MAP_CAP`]): the warm-cache remap detector.
    owners: Mutex<HashMap<u64, usize>>,
}

/// The running front tier. [`drain`](ShardHandle::drain) (or drop)
/// shuts it down.
pub struct ShardHandle {
    server: Arc<ShardServer>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl ShardServer {
    /// Binds `addr` and starts routing to `backends` (address strings,
    /// e.g. `"127.0.0.1:7101"`). Backends start healthy — the probe
    /// thread and the routing path correct that within one interval.
    pub fn start(
        addr: &str,
        backends: &[String],
        config: ShardConfig,
    ) -> Result<ShardHandle, String> {
        if backends.is_empty() {
            return Err("decss shard needs at least one backend".into());
        }
        let backends = backends
            .iter()
            .map(|b| {
                let parsed: SocketAddr =
                    b.parse().map_err(|e| format!("backend address {b:?}: {e}"))?;
                Ok(BackendState {
                    addr: parsed,
                    label: b.clone(),
                    healthy: AtomicBool::new(true),
                    routed: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("local addr: {e}"))?;
        let max_conns = config.max_connections.max(1);
        let server = Arc::new(ShardServer {
            conns: JobQueue::new(max_conns),
            draining: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            stop_probe: AtomicBool::new(false),
            counters: ShardCounters::default(),
            owners: Mutex::new(HashMap::new()),
            addr: local,
            backends,
            config,
        });
        let workers = (0..max_conns)
            .map(|index| {
                let server = Arc::clone(&server);
                std::thread::Builder::new()
                    .name(format!("decss-shard-conn-{index}"))
                    .spawn(move || conn_worker(&server))
                    .map_err(|e| format!("spawning connection worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("decss-shard-accept".into())
                .spawn(move || accept_loop(&server, listener))
                .map_err(|e| format!("spawning accept loop: {e}"))?
        };
        let probe = {
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("decss-shard-probe".into())
                .spawn(move || probe_loop(&server))
                .map_err(|e| format!("spawning probe thread: {e}"))?
        };
        Ok(ShardHandle { server, accept: Some(accept), workers, probe: Some(probe) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configured backends.
    pub fn backends(&self) -> &[BackendState] {
        &self.backends
    }

    /// Current front-tier counters.
    pub fn counters(&self) -> ShardSnapshot {
        self.counters.snapshot()
    }

    /// Flips `/ready` to 503 and refuses new jobs.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The owner of `fingerprint` among currently-healthy backends:
    /// `(index, label)` per [`rendezvous_pick`], or `None` when every
    /// backend is down.
    pub fn route(&self, fingerprint: u64) -> Option<usize> {
        let healthy: Vec<(usize, &str)> = self
            .backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_healthy())
            .map(|(i, b)| (i, b.label.as_str()))
            .collect();
        rendezvous_pick(healthy.iter().map(|(_, l)| *l), fingerprint).map(|pick| healthy[pick].0)
    }

    /// Records that `fingerprint` was answered by backend `index`. When
    /// the key was last answered by a *different* backend, the answer
    /// cold-started on the new owner: `remapped_keys` counts the miss so
    /// the warm-cache hole left by a backend-set change is observable in
    /// `/stats` rather than silent.
    fn note_owner(&self, fingerprint: u64, index: usize) {
        let mut owners = self.owners.lock().expect("owner map lock");
        match owners.get(&fingerprint).copied() {
            Some(prev) if prev == index => {}
            Some(_) => {
                owners.insert(fingerprint, index);
                self.counters.remapped_keys.fetch_add(1, Ordering::Relaxed);
            }
            None if owners.len() < OWNER_MAP_CAP => {
                owners.insert(fingerprint, index);
            }
            None => {}
        }
    }

    /// Forwards `body` to the owner of `fingerprint` as a single-job
    /// `POST /solve`, failing over (and marking backends unhealthy) on
    /// transport errors and `503 draining` answers. Returns the backend
    /// answer, or an error string when no healthy backend is left.
    fn forward_job(
        &self,
        fingerprint: u64,
        body: &str,
        client: Option<&str>,
    ) -> Result<(u16, Vec<u8>), String> {
        let mut first_attempt = true;
        loop {
            let Some(index) = self.route(fingerprint) else {
                self.counters.no_backend.fetch_add(1, Ordering::Relaxed);
                return Err("no healthy backend".into());
            };
            let backend = &self.backends[index];
            if first_attempt {
                self.counters.routed.fetch_add(1, Ordering::Relaxed);
                first_attempt = false;
            } else {
                self.counters.rerouted.fetch_add(1, Ordering::Relaxed);
            }
            let mut c = Client::new(backend.addr).with_timeout(self.config.forward_timeout);
            if let Some(id) = client {
                c = c.with_client_id(id);
            }
            match c.post("/solve", body) {
                // A draining backend refuses intake with 503: take it
                // out of rotation and hand its keys to the next scorer.
                Ok(resp) if resp.status == 503 => {
                    self.demote(backend, "503 on forward");
                }
                Ok(resp) => {
                    backend.routed.fetch_add(1, Ordering::Relaxed);
                    self.note_owner(fingerprint, index);
                    return Ok((resp.status, resp.body));
                }
                Err(_) => {
                    self.demote(backend, "transport error");
                }
            }
        }
    }

    /// Marks `backend` unhealthy from the routing path, logging the
    /// backend-set change (once per transition) together with how many
    /// keys have been observed remapping so far.
    fn demote(&self, backend: &BackendState, why: &str) {
        backend.errors.fetch_add(1, Ordering::Relaxed);
        if backend.healthy.swap(false, Ordering::SeqCst) {
            eprintln!(
                "decss-shard: backend {} down ({why}); {} remapped keys so far",
                backend.label,
                self.counters.remapped_keys.load(Ordering::Relaxed),
            );
        }
    }
}

impl ShardHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// The shared front-tier state.
    pub fn server(&self) -> &Arc<ShardServer> {
        &self.server
    }

    /// Graceful drain: `/ready` flips first, the listener closes after
    /// `grace`, in-flight requests finish, and the accounting comes
    /// back.
    pub fn drain(mut self, grace: Duration) -> ShardSummary {
        self.shutdown(grace)
    }

    fn shutdown(&mut self, grace: Duration) -> ShardSummary {
        self.server.begin_drain();
        if !grace.is_zero() {
            std::thread::sleep(grace);
        }
        self.server.stop_accept.store(true, Ordering::SeqCst);
        self.server.stop_probe.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(probe) = self.probe.take() {
            let _ = probe.join();
        }
        ShardSummary {
            net: self.server.counters.snapshot(),
            backends: self
                .server
                .backends
                .iter()
                .map(|b| BackendReport {
                    label: b.label.clone(),
                    addr: b.addr,
                    healthy: b.is_healthy(),
                    routed: b.routed.load(Ordering::Relaxed),
                    errors: b.errors.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.shutdown(Duration::ZERO);
        }
    }
}

fn probe_loop(server: &Arc<ShardServer>) {
    let slice = Duration::from_millis(50).min(server.config.probe_interval);
    let timeout = server.config.forward_timeout.min(Duration::from_secs(1));
    let mut next = Instant::now(); // first probe immediately
    while !server.stop_probe.load(Ordering::SeqCst) {
        if Instant::now() < next {
            std::thread::sleep(slice);
            continue;
        }
        for backend in &server.backends {
            let up = Client::new(backend.addr)
                .with_timeout(timeout)
                .get("/ready")
                .is_ok_and(|r| r.status == 200);
            let was = backend.healthy.swap(up, Ordering::SeqCst);
            if was != up {
                // A backend-set change: every key the old set owned
                // elsewhere may now remap (and cold-start) — log the
                // transition with the running remap count.
                eprintln!(
                    "decss-shard: probe marked backend {} {}; {} remapped keys so far",
                    backend.label,
                    if up { "up" } else { "down" },
                    server.counters.remapped_keys.load(Ordering::Relaxed),
                );
            }
        }
        next = Instant::now() + server.config.probe_interval;
    }
}

fn accept_loop(server: &Arc<ShardServer>, listener: TcpListener) {
    while !server.stop_accept.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                match server.conns.try_push(stream) {
                    Ok(()) => {
                        server.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(PushError::Full(mut stream) | PushError::Closed(mut stream)) => {
                        server.counters.refused_busy.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(server.config.write_timeout));
                        let body =
                            http::error_body("busy", "connection pool is full; retry shortly", &[]);
                        let _ = stream.write_all(&http::response(503, &body, true, &[]));
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    server.conns.close();
}

fn conn_worker(server: &Arc<ShardServer>) {
    while let Some(stream) = server.conns.pop() {
        serve_connection(server, stream);
        server.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
    }
}

fn write_response(server: &ShardServer, stream: &mut TcpStream, bytes: &[u8]) -> bool {
    let _ = stream.set_write_timeout(Some(server.config.write_timeout));
    match stream.write_all(bytes) {
        Ok(()) => true,
        Err(_) => {
            server.counters.hangups.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

fn serve_connection(server: &Arc<ShardServer>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut served = 0u32;
    loop {
        let outcome = read_request_with(
            &mut stream,
            &mut buf,
            served > 0,
            server.config.read_timeout,
            &server.config.limits,
            &|| server.is_draining(),
        );
        match outcome {
            ReadOutcome::Request(request) => {
                server.counters.requests.fetch_add(1, Ordering::Relaxed);
                served += 1;
                let close = request.wants_close()
                    || served >= server.config.keep_alive_requests
                    || server.is_draining();
                let (status, body) = handle_request(server, &request);
                let bytes = http::response(status, &body, close, &[]);
                if !write_response(server, &mut stream, &bytes) {
                    return;
                }
                if close {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            ReadOutcome::CleanClose | ReadOutcome::IdleDrain => return,
            ReadOutcome::Hangup => {
                server.counters.hangups.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::Timeout => {
                server.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let body = http::error_body(
                    "timeout",
                    "request not completed within the read deadline",
                    &[],
                );
                write_response(server, &mut stream, &http::response(408, &body, true, &[]));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            ReadOutcome::Bad(err) => {
                server.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                write_response(
                    server,
                    &mut stream,
                    &http::error_response(&err, "bad_request", true),
                );
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

fn handle_request(server: &Arc<ShardServer>, req: &Request) -> (u16, Vec<u8>) {
    let path = req.target.split('?').next().unwrap_or("");
    match path {
        "/healthz" | "/ready" | "/stats" if req.method != "GET" => (
            405,
            http::error_body("method_not_allowed", &format!("{path} takes GET"), &[]),
        ),
        "/solve" | "/jobs" if req.method != "POST" => (
            405,
            http::error_body("method_not_allowed", &format!("{path} takes POST"), &[]),
        ),
        "/healthz" => (200, b"{\"ok\": true}\n".to_vec()),
        "/ready" => {
            let up = server.backends.iter().filter(|b| b.is_healthy()).count();
            if server.is_draining() {
                (503, http::error_body("draining", "front tier is draining", &[]))
            } else if up == 0 {
                (503, http::error_body("no_backend", "no healthy backend", &[]))
            } else {
                (
                    200,
                    format!("{{\"ready\": true, \"backends_up\": {up}}}\n").into_bytes(),
                )
            }
        }
        "/stats" => (200, stats_doc(server).into_bytes()),
        "/solve" => route_one(server, req),
        "/jobs" => route_batch(server, req),
        _ => (404, http::error_body("not_found", &format!("no route {path}"), &[])),
    }
}

fn stats_doc(server: &ShardServer) -> String {
    let backends = server
        .backends
        .iter()
        .map(|b| {
            format!(
                "    {{\"label\": \"{}\", \"healthy\": {}, \"routed\": {}, \"errors\": {}}}",
                escape(&b.label),
                b.is_healthy(),
                b.routed.load(Ordering::Relaxed),
                b.errors.load(Ordering::Relaxed),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"ready\": {},\n  \"shard\": {{{}}},\n  \"backends\": [\n{backends}\n  ]\n}}\n",
        !server.is_draining(),
        server.counters.snapshot().json_fields(),
    )
}

/// The fingerprints of the job lines in `body`, paired with the lines
/// themselves — the routing keys. Parsing is strict ([`FileAccess::
/// Denied`]), so a front tier rejects exactly what a backend would.
fn keyed_job_lines(body: &str) -> Result<Vec<(u64, String)>, String> {
    let specs = jobs::parse_job_specs(body, FileAccess::Denied)?;
    let lines: Vec<&str> = body
        .lines()
        .map(str::trim)
        .filter(|l| l.contains("\"algorithm\""))
        .collect();
    // parse_job_specs yields one spec per job line, in order.
    debug_assert_eq!(specs.len(), lines.len());
    Ok(specs
        .iter()
        .zip(lines)
        .map(|(spec, line)| (JobKey::new(&spec.graph, &spec.req).fingerprint, line.to_string()))
        .collect())
}

fn route_one(server: &Arc<ShardServer>, req: &Request) -> (u16, Vec<u8>) {
    if server.is_draining() {
        return (503, http::error_body("draining", "intake is closed", &[]));
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return (400, http::error_body("bad_encoding", "body is not valid UTF-8", &[]));
    };
    let keyed = match keyed_job_lines(body) {
        Ok(keyed) => keyed,
        Err(e) => return (400, http::error_body("bad_job", &e, &[])),
    };
    if keyed.len() != 1 {
        return (
            400,
            http::error_body(
                "bad_job",
                "POST /solve takes exactly one job; POST /jobs runs batches",
                &[],
            ),
        );
    }
    let (fingerprint, line) = &keyed[0];
    match server.forward_job(*fingerprint, &format!("[\n{line}\n]"), req.header("x-decss-client")) {
        Ok((status, body)) => (status, body),
        Err(e) => (503, http::error_body("no_backend", &e, &[])),
    }
}

fn route_batch(server: &Arc<ShardServer>, req: &Request) -> (u16, Vec<u8>) {
    if server.is_draining() {
        return (503, http::error_body("draining", "intake is closed", &[]));
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return (400, http::error_body("bad_encoding", "body is not valid UTF-8", &[]));
    };
    let keyed = match keyed_job_lines(body) {
        Ok(keyed) => keyed,
        Err(e) => return (400, http::error_body("bad_jobs", &e, &[])),
    };
    let client = req.header("x-decss-client");
    let rows: Vec<String> = keyed
        .iter()
        .enumerate()
        .map(|(index, (fingerprint, line))| {
            match server.forward_job(*fingerprint, &format!("[\n{line}\n]"), client) {
                Ok((_, answer)) => {
                    // The backend row carries `"job": 0` (it saw a
                    // single-job document); restore the batch index.
                    let row = String::from_utf8_lossy(&answer).trim().to_string();
                    format!(
                        "    {}",
                        row.replacen("\"job\": 0,", &format!("\"job\": {index},"), 1)
                    )
                }
                Err(e) => format!("    {{\"job\": {index}, \"error\": \"{}\"}}", escape(&e)),
            }
        })
        .collect();
    let doc = format!(
        "{{\n  \"shard\": {{{}}},\n  \"jobs\": [\n{}\n  ]\n}}\n",
        server.counters.snapshot().json_fields(),
        rows.join(",\n"),
    );
    (200, doc.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_order_independent() {
        let labels = ["a:1", "b:2", "c:3"];
        for fp in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let pick = rendezvous_pick(labels.iter().copied(), fp).unwrap();
            // Reversing the list picks the same label.
            let rev: Vec<&str> = labels.iter().rev().copied().collect();
            let pick_rev = rendezvous_pick(rev.iter().copied(), fp).unwrap();
            assert_eq!(labels[pick], rev[pick_rev], "fp {fp:#x}");
        }
        assert_eq!(rendezvous_pick(std::iter::empty(), 7), None);
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let full = ["s:1", "s:2", "s:3", "s:4"];
        let without_third: Vec<&str> = full.iter().copied().filter(|l| *l != "s:3").collect();
        let mut remapped = 0usize;
        for fp in 0u64..2_000 {
            let key = crate::shard::mix64(fp.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let before = full[rendezvous_pick(full.iter().copied(), key).unwrap()];
            let after = without_third[rendezvous_pick(without_third.iter().copied(), key).unwrap()];
            if before == "s:3" {
                remapped += 1; // its keys must move somewhere
            } else {
                assert_eq!(before, after, "key {key:#x} moved although its owner stayed");
            }
        }
        // Sanity: the removed backend owned a nontrivial share (~1/4).
        assert!((300..700).contains(&remapped), "owned {remapped} of 2000");
    }

    #[test]
    fn scores_spread_keys_roughly_evenly() {
        let labels = ["x:1", "y:2", "z:3"];
        let mut counts = [0usize; 3];
        for fp in 0u64..3_000 {
            let key = mix64(fp.wrapping_add(0x1234_5678));
            counts[rendezvous_pick(labels.iter().copied(), key).unwrap()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((600..1400).contains(c), "backend {i} owns {c} of 3000");
        }
    }
}
