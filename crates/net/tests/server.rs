//! Integration suite for the network tier: routes, solve correctness
//! (byte-identity with a fresh session), batch coalescing, structured
//! rejection of malformed input, load shedding, quotas, slow-loris
//! cutoff, graceful drain ordering, and fault-injection accounting.

use decss_net::client::{raw_exchange, Client};
use decss_net::jobs::{self, FileAccess};
use decss_net::server::{NetConfig, NetHandle, NetServer};
use decss_net::{FaultPlan, QuotaConfig};
use decss_service::{JobId, JobOutcome, ServiceConfig};
use decss_solver::SolverSession;
use std::sync::Arc;
use std::time::Duration;

fn start(net: NetConfig, service: ServiceConfig) -> NetHandle {
    NetServer::start("127.0.0.1:0", net, service).expect("server starts")
}

fn small_service() -> ServiceConfig {
    ServiceConfig::default()
        .workers(2)
        .queue_capacity(8)
        .cache_capacity(32)
}

/// Strips `"key": value` plus one adjacent comma — aligns service rows
/// (which stamp `wall_ms` and `cache_hit`) with fresh-solve rows.
fn strip_field(row: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(start) = row.find(&needle) else {
        return row.to_string();
    };
    let after = &row[start + needle.len()..];
    let value_len = after.find([',', '}']).unwrap_or(after.len());
    let mut end = start + needle.len() + value_len;
    if row[end..].starts_with(',') {
        end += 1;
        if row[end..].starts_with(' ') {
            end += 1;
        }
        format!("{}{}", &row[..start], &row[end..])
    } else {
        let head = row[..start].trim_end();
        let start = head.strip_suffix(',').map_or(start, |h| h.len());
        format!("{}{}", &row[..start], &row[end..])
    }
}

fn canonical(row: &str) -> String {
    strip_field(&strip_field(row.trim(), "wall_ms"), "cache_hit")
}

#[test]
fn routes_and_probes_answer_structurally() {
    let handle = start(NetConfig::default(), small_service());
    let client = Client::new(handle.addr());

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"ok\": true"));

    let ready = client.get("/ready").unwrap();
    assert_eq!(ready.status, 200);
    assert!(ready.text().contains("\"ready\": true"));

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let text = stats.text();
    assert!(text.contains("\"service\""), "{text}");
    assert!(text.contains("\"net\""), "{text}");
    assert!(text.contains("\"clients\""), "{text}");
    assert_eq!(stats.header("content-type"), Some("application/json"));

    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/solve").unwrap().status, 405);
    assert_eq!(client.post("/healthz", "{}").unwrap().status, 405);

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.slot_leaks(), 0, "{summary:?}");
    assert!(summary.service.audit.is_ok(), "{summary:?}");
}

#[test]
fn solve_over_http_is_byte_identical_to_a_fresh_session() {
    let handle = start(NetConfig::default(), small_service());
    let client = Client::new(handle.addr()).with_client_id("ci");
    let line = r#"{"algorithm": "improved", "family": "grid", "n": 36, "seed": 3}"#;

    let resp = client.post("/solve", line).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    let spec = jobs::parse_job_specs(&format!("[\n{line}\n]"), FileAccess::Denied)
        .unwrap()
        .remove(0);
    let fresh = SolverSession::new().solve(&spec.graph, &spec.req).unwrap();
    let outcome = JobOutcome { job: JobId(0), report: fresh, cache_hit: false };
    let fresh_row = canonical(&jobs::job_row(0, &spec, &Ok(outcome)));
    assert_eq!(
        canonical(&resp.text()),
        fresh_row,
        "served report must match a fresh solve"
    );

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.clients, vec![("ci".to_string(), 1)]);
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(1), "{summary:?}");
}

#[test]
fn batches_share_the_cache_and_report_whole() {
    let handle = start(NetConfig::default(), small_service().workers(1));
    let client = Client::new(handle.addr());
    let doc = concat!(
        "[\n",
        r#"{"algorithm": "greedy", "family": "grid", "n": 25, "seed": 1},"#,
        "\n",
        r#"{"algorithm": "greedy", "family": "grid", "n": 25, "seed": 1},"#,
        "\n",
        r#"{"algorithm": "improved", "family": "grid", "n": 25, "seed": 1}"#,
        "\n]"
    );
    let resp = client.post("/jobs", doc).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let text = resp.text();
    assert_eq!(text.matches("\"job\":").count(), 3, "{text}");
    assert!(
        text.contains("\"cache_hit\": true"),
        "duplicate must coalesce: {text}"
    );
    assert!(text.contains("\"service\""), "{text}");

    // A batch with a bad row is rejected whole, before any solve runs.
    let bad = "[\n{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": \"lots\"}\n]";
    let resp = client.post("/jobs", bad).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("bad_jobs"), "{}", resp.text());

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(3), "{summary:?}");
}

#[test]
fn malformed_input_gets_structured_4xx() {
    let mut net = NetConfig::default();
    net.limits.max_body_bytes = 512;
    let handle = start(net, small_service());
    let addr = handle.addr();
    let client = Client::new(addr);

    // Bad JSON job → 400 with a machine-readable code.
    let resp = client.post("/solve", "this is not a job").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"error\": \"bad_job\""), "{}", resp.text());

    // /solve takes exactly one job.
    let two = "[\n{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16},\n{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}\n]";
    let resp = client.post("/solve", two).unwrap();
    assert_eq!(resp.status, 400);

    // Remote clients cannot name server files.
    let probe = r#"{"algorithm": "greedy", "input": "/etc/hostname"}"#;
    let resp = client.post("/solve", probe).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("not served over the network"), "{}", resp.text());

    // Oversized declared body → 413 from the head alone.
    let resp = client.post("/solve", &"x".repeat(600)).unwrap();
    assert_eq!(resp.status, 413);
    assert!(resp.text().contains("body_too_large"), "{}", resp.text());

    // Transfer-Encoding is refused, not mis-framed.
    let reply = raw_exchange(
        addr,
        b"POST /solve HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        Duration::from_secs(2),
    )
    .unwrap();
    let reply = String::from_utf8_lossy(&reply).into_owned();
    assert!(reply.starts_with("HTTP/1.1 501"), "{reply}");

    // Bare-LF framing is rejected (smuggling guard).
    let reply = raw_exchange(
        addr,
        b"GET /healthz HTTP/1.1\nhost: x\n\r\n\r\n",
        Duration::from_secs(2),
    )
    .unwrap();
    let reply = String::from_utf8_lossy(&reply).into_owned();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.slot_leaks(), 0, "{summary:?}");
    assert!(summary.net.parse_errors >= 2, "{summary:?}");
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(0), "{summary:?}");
}

#[test]
fn slow_loris_is_cut_off_with_408() {
    let net = NetConfig::default().read_timeout(Duration::from_millis(200));
    let handle = start(net, small_service());
    let reply = raw_exchange(handle.addr(), b"POST /solve HTT", Duration::from_secs(2)).unwrap();
    let reply = String::from_utf8_lossy(&reply).into_owned();
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.net.timeouts, 1, "{summary:?}");
    assert_eq!(summary.slot_leaks(), 0, "{summary:?}");
}

#[test]
fn full_queue_sheds_with_retry_hint() {
    // One worker, queue of one: occupy both slots with slow direct
    // submissions, then the HTTP solve must shed instantly.
    let handle = start(
        NetConfig::default(),
        ServiceConfig::default().workers(1).queue_capacity(1),
    );
    let service = handle.server().service();
    let g = Arc::new(decss_graphs::gen::grid(45, 45, 32, 0));
    let running = service.submit(Arc::clone(&g), decss_solver::SolveRequest::new("greedy"));
    // Wait until the worker picked the first job up, then occupy the
    // queue slot with a second.
    while service.stats().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let queued =
        service.submit(Arc::clone(&g), decss_solver::SolveRequest::new("greedy").epsilon(0.5));

    let client = Client::new(handle.addr());
    let resp = client
        .post("/solve", r#"{"algorithm": "greedy", "family": "grid", "n": 16}"#)
        .unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    let text = resp.text();
    assert!(text.contains("\"error\": \"overloaded\""), "{text}");
    assert!(text.contains("retry_after_ms"), "{text}");

    service.join(running).unwrap();
    service.join(queued).unwrap();
    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.net.shed, 1, "{summary:?}");
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(2), "{summary:?}");
}

#[test]
fn quotas_meter_per_client() {
    let net = NetConfig::default().quota(QuotaConfig { refill_per_sec: 0.1, burst: 2.0 });
    let handle = start(net, small_service());
    let alice = Client::new(handle.addr()).with_client_id("alice");
    let bob = Client::new(handle.addr()).with_client_id("bob");
    let line = r#"{"algorithm": "greedy", "family": "grid", "n": 16}"#;

    assert_eq!(alice.post("/solve", line).unwrap().status, 200);
    assert_eq!(alice.post("/solve", line).unwrap().status, 200);
    let denied = alice.post("/solve", line).unwrap();
    assert_eq!(denied.status, 429, "{}", denied.text());
    let text = denied.text();
    assert!(text.contains("quota_exceeded"), "{text}");
    assert!(text.contains("retry_after_ms"), "{text}");

    // Quotas are per client: bob is unaffected by alice's exhaustion.
    assert_eq!(bob.post("/solve", line).unwrap().status, 200);

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.net.quota_denied, 1, "{summary:?}");
    assert_eq!(
        summary.clients,
        vec![("alice".to_string(), 2), ("bob".to_string(), 1)],
        "{summary:?}"
    );
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(3), "{summary:?}");
}

#[test]
fn drain_flips_ready_before_the_listener_closes() {
    let handle = start(NetConfig::default(), small_service());
    let client = Client::new(handle.addr());
    assert_eq!(client.get("/ready").unwrap().status, 200);

    handle.server().begin_drain();
    // Unready is visible while the listener still answers — the window
    // a load balancer needs to stop routing before connections fail.
    let ready = client.get("/ready").unwrap();
    assert_eq!(ready.status, 503, "{}", ready.text());
    assert!(ready.text().contains("draining"), "{}", ready.text());
    assert_eq!(
        client.get("/healthz").unwrap().status,
        200,
        "listener must still answer"
    );
    let resp = client
        .post("/solve", r#"{"algorithm": "greedy", "family": "grid", "n": 16}"#)
        .unwrap();
    assert_eq!(resp.status, 503, "intake refuses during drain: {}", resp.text());

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.slot_leaks(), 0, "{summary:?}");
    assert_eq!(summary.net.conns_open, 0, "{summary:?}");
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(0), "{summary:?}");
    assert_eq!(summary.service.stats.queue_depth, 0, "{summary:?}");
}

#[test]
fn injected_faults_leave_the_accounting_clean() {
    let net =
        NetConfig::default().fault(FaultPlan { accept_errors: vec![0], write_errors: vec![1] });
    let handle = start(net, small_service());
    let client = Client::new(handle.addr());
    let line = r#"{"algorithm": "greedy", "family": "grid", "n": 16}"#;

    // Connection 0 is dropped at accept: the client sees a dead socket.
    assert!(client.post("/solve", line).is_err(), "faulted accept must not answer");
    // The next connections serve; write index 1 is severed mid-response.
    let mut ok = 0u32;
    let mut severed = 0u32;
    for _ in 0..3 {
        match client.post("/solve", line) {
            Ok(resp) if resp.status == 200 => ok += 1,
            Ok(resp) => panic!("unexpected status {}", resp.status),
            Err(_) => severed += 1,
        }
    }
    assert_eq!(ok, 2, "two responses land");
    assert_eq!(severed, 1, "one response is severed by the write fault");

    let summary = handle.drain(Duration::ZERO);
    assert_eq!(summary.net.faulted_accepts, 1, "{summary:?}");
    assert_eq!(summary.net.write_faults, 1, "{summary:?}");
    assert_eq!(summary.slot_leaks(), 0, "faults must not leak slots: {summary:?}");
    // All three accepted jobs ran to completion and audit cleanly —
    // a severed response does not corrupt the service.
    assert_eq!(summary.service.audit.as_ref().copied(), Ok(3), "{summary:?}");
}
