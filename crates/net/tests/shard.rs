//! The drain-then-handoff contract of the shard front tier: two
//! backends split jobs by graph fingerprint along the precomputed
//! rendezvous mapping; when one backend drains mid-stream, the front
//! tier re-routes its keys to the survivor and **zero jobs drop** —
//! every submission comes back as a valid row and every completed job
//! is audited on exactly one backend.

use decss_net::client::Client;
use decss_net::jobs::{self, FileAccess};
use decss_net::server::{NetConfig, NetHandle, NetServer};
use decss_net::shard::{rendezvous_pick, ShardConfig, ShardServer};
use decss_service::{JobKey, ServiceConfig};
use std::time::Duration;

fn backend() -> NetHandle {
    let service = ServiceConfig::default()
        .workers(2)
        .queue_capacity(8)
        .cache_capacity(32);
    NetServer::start("127.0.0.1:0", NetConfig::default(), service).expect("backend starts")
}

/// The fingerprint of a one-job document, exactly as the front tier
/// computes it.
fn fingerprint_of(line: &str) -> u64 {
    let doc = format!("[\n{line}\n]");
    let specs = jobs::parse_job_specs(&doc, FileAccess::Denied).expect("spec parses");
    JobKey::new(&specs[0].graph, &specs[0].req).fingerprint
}

fn job_line(seed: u64) -> String {
    format!(r#"{{"algorithm": "greedy", "family": "grid", "n": 16, "seed": {seed}}}"#)
}

/// Collects `want` job lines owned by backend `owner` under the
/// rendezvous mapping over `labels` — the test's precomputed split.
fn jobs_owned_by(labels: &[String], owner: usize, want: usize, seeds: &mut u64) -> Vec<String> {
    let mut out = Vec::new();
    while out.len() < want {
        let line = job_line(*seeds);
        *seeds += 1;
        let pick = rendezvous_pick(labels.iter().map(String::as_str), fingerprint_of(&line))
            .expect("nonempty backend set");
        if pick == owner {
            out.push(line);
        }
        assert!(*seeds < 10_000, "seed search runaway");
    }
    out
}

#[test]
fn two_backends_split_by_fingerprint_and_survive_a_mid_stream_drain() {
    let a = backend();
    let b = backend();
    let labels = vec![a.addr().to_string(), b.addr().to_string()];
    let front = ShardServer::start(
        "127.0.0.1:0",
        &labels,
        ShardConfig::default()
            .probe_interval(Duration::from_millis(50))
            .forward_timeout(Duration::from_secs(10)),
    )
    .expect("front tier starts");
    let client = Client::new(front.addr()).with_client_id("shard-test");

    // Phase 1: three jobs per backend, chosen by the precomputed
    // rendezvous mapping. All must land on their owner.
    let mut seeds = 0u64;
    let a_jobs = jobs_owned_by(&labels, 0, 3, &mut seeds);
    let b_jobs = jobs_owned_by(&labels, 1, 3, &mut seeds);
    for line in a_jobs.iter().chain(&b_jobs) {
        let resp = client
            .post("/solve", &format!("[\n{line}\n]"))
            .expect("phase-1 solve");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(!resp.text().contains("\"error\""), "{}", resp.text());
    }
    assert_eq!(a.server().service().stats().completed, 3, "A owns its three keys");
    assert_eq!(b.server().service().stats().completed, 3, "B owns its three keys");

    // Phase 2: backend A drains mid-stream (grace window running) while
    // six more jobs arrive — three of them owned by the draining A.
    let a_phase2 = jobs_owned_by(&labels, 0, 3, &mut seeds);
    let b_phase2 = jobs_owned_by(&labels, 1, 3, &mut seeds);
    let drainer = std::thread::spawn(move || a.drain(Duration::from_millis(300)));
    for line in a_phase2.iter().chain(&b_phase2) {
        let resp = client
            .post("/solve", &format!("[\n{line}\n]"))
            .expect("phase-2 solve");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(!resp.text().contains("\"error\""), "{}", resp.text());
    }
    let summary_a = drainer.join().expect("drain thread");
    assert!(summary_a.service.audit.is_ok(), "{summary_a:?}");
    assert_eq!(
        summary_a.service.stats.completed, 3,
        "A audits exactly its phase-1 jobs"
    );

    // The survivor picked up all of phase 2: its keys plus A's.
    let summary_b = b.drain(Duration::ZERO);
    assert!(summary_b.service.audit.is_ok(), "{summary_b:?}");
    assert_eq!(
        summary_b.service.stats.completed, 9,
        "B audits its six jobs plus A's three re-routed ones"
    );

    let front_summary = front.drain(Duration::ZERO);
    assert_eq!(front_summary.net.routed, 12, "every job was routed exactly once");
    assert_eq!(front_summary.net.no_backend, 0, "zero dropped jobs");
    assert!(
        front_summary.net.rerouted >= 1,
        "A's drain must have forced at least one failover: {front_summary:?}"
    );
    assert_eq!(
        front_summary.routed_total(),
        12,
        "per-backend accounting covers every job: {front_summary:?}"
    );
    let a_report = &front_summary.backends[0];
    assert!(!a_report.healthy, "the probe saw A drain");
}

#[test]
fn batches_route_per_job_and_reindex_rows() {
    let a = backend();
    let b = backend();
    let labels = vec![a.addr().to_string(), b.addr().to_string()];
    let front = ShardServer::start("127.0.0.1:0", &labels, ShardConfig::default())
        .expect("front tier starts");
    let client = Client::new(front.addr());

    let mut seeds = 100u64;
    let mut lines = jobs_owned_by(&labels, 0, 2, &mut seeds);
    lines.extend(jobs_owned_by(&labels, 1, 2, &mut seeds));
    let body = format!("[\n{}\n]", lines.join(",\n"));
    let resp = client.post("/jobs", &body).expect("batch");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let text = resp.text();
    for index in 0..lines.len() {
        assert!(
            text.contains(&format!("\"job\": {index},")),
            "row {index} re-indexed: {text}"
        );
    }
    assert!(!text.contains("\"error\""), "{text}");
    assert!(text.contains("\"shard\""), "{text}");
    assert_eq!(a.server().service().stats().completed, 2);
    assert_eq!(b.server().service().stats().completed, 2);

    // Front-tier probes and stats.
    let ready = client.get("/ready").expect("ready");
    assert_eq!(ready.status, 200);
    assert!(ready.text().contains("\"backends_up\": 2"), "{}", ready.text());
    let stats = client.get("/stats").expect("stats").text();
    assert!(stats.contains("\"backends\""), "{stats}");
    assert!(stats.contains("\"routed\": 4"), "{stats}");

    drop(front);
    assert!(a.drain(Duration::ZERO).service.audit.is_ok());
    assert!(b.drain(Duration::ZERO).service.audit.is_ok());
}

#[test]
fn failover_surfaces_remapped_keys_in_stats() {
    let a = backend();
    let b = backend();
    let labels = vec![a.addr().to_string(), b.addr().to_string()];
    let front = ShardServer::start(
        "127.0.0.1:0",
        &labels,
        ShardConfig::default()
            // Slow probe: the routing path, not the probe, must discover
            // the drain, exactly like a mid-stream failover.
            .probe_interval(Duration::from_secs(60))
            .forward_timeout(Duration::from_secs(10)),
    )
    .expect("front tier starts");
    let client = Client::new(front.addr()).with_client_id("remap-test");

    // One job owned by backend A, served warm on A.
    let mut seeds = 500u64;
    let line = jobs_owned_by(&labels, 0, 1, &mut seeds).remove(0);
    let resp = client.post("/solve", &format!("[\n{line}\n]")).expect("first solve");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let stats = client.get("/stats").expect("stats").text();
    assert!(stats.contains("\"remapped_keys\": 0"), "no remap yet: {stats}");

    // A leaves the backend set; the same key must fail over to B and be
    // counted as a remapped (cold-started) key.
    assert!(a.drain(Duration::ZERO).service.audit.is_ok());
    let resp = client
        .post("/solve", &format!("[\n{line}\n]"))
        .expect("failover solve");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let stats = client.get("/stats").expect("stats").text();
    assert!(
        stats.contains("\"remapped_keys\": 1"),
        "the failed-over key is a visible warm-cache miss: {stats}"
    );

    let summary = front.drain(Duration::ZERO);
    assert_eq!(summary.net.remapped_keys, 1, "{summary:?}");
    assert!(b.drain(Duration::ZERO).service.audit.is_ok());
}

#[test]
fn a_front_tier_with_no_healthy_backend_sheds_instead_of_hanging() {
    // A backend that exists only long enough to be configured.
    let dead = backend();
    let labels = vec![dead.addr().to_string()];
    assert!(dead.drain(Duration::ZERO).service.audit.is_ok());
    let front = ShardServer::start(
        "127.0.0.1:0",
        &labels,
        ShardConfig::default()
            .probe_interval(Duration::from_millis(30))
            .forward_timeout(Duration::from_millis(500)),
    )
    .expect("front tier starts");
    let client = Client::new(front.addr());
    let resp = client
        .post(
            "/solve",
            r#"[{"algorithm": "greedy", "family": "grid", "n": 16, "seed": 1}]"#,
        )
        .expect("answered, not hung");
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(resp.text().contains("no_backend"), "{}", resp.text());
    // Once the probe notices, /ready reports the outage too.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let ready = client.get("/ready").expect("ready");
        if ready.status == 503 {
            assert!(ready.text().contains("no_backend"), "{}", ready.text());
            break;
        }
        assert!(std::time::Instant::now() < deadline, "probe never flipped /ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    let summary = front.drain(Duration::ZERO);
    // Depending on whether the probe beat the solve, the job either got
    // one doomed route attempt or none — but it was shed either way.
    assert!(summary.net.routed <= 1, "{summary:?}");
    assert_eq!(summary.net.no_backend, 1);
}
