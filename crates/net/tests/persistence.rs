//! Warm-state persistence over the network tier: snapshot on drain,
//! restore at start, interval snapshots, and the cold-start fallback on
//! hostile snapshot files. The determinism contract here is the
//! integration-level one: a restored server answers **byte-identical
//! rows** (modulo `wall_ms`/`cache_hit`) to the ones the pre-drain
//! server sent over the wire.

use decss_net::client::Client;
use decss_net::server::{NetConfig, NetHandle, NetServer};
use decss_service::ServiceConfig;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("decss-net-persist-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn start(net: NetConfig) -> NetHandle {
    let service = ServiceConfig::default()
        .workers(2)
        .queue_capacity(8)
        .cache_capacity(32);
    NetServer::start("127.0.0.1:0", net, service).expect("server starts")
}

/// Strips `"key": value` plus one adjacent comma.
fn strip_field(row: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(start) = row.find(&needle) else {
        return row.to_string();
    };
    let after = &row[start + needle.len()..];
    let value_len = after.find([',', '}']).unwrap_or(after.len());
    let mut end = start + needle.len() + value_len;
    if row[end..].starts_with(',') {
        end += 1;
        if row[end..].starts_with(' ') {
            end += 1;
        }
        format!("{}{}", &row[..start], &row[end..])
    } else {
        let head = row[..start].trim_end();
        let start = head.strip_suffix(',').map_or(start, |h| h.len());
        format!("{}{}", &row[..start], &row[end..])
    }
}

fn canonical(row: &str) -> String {
    strip_field(&strip_field(row.trim(), "wall_ms"), "cache_hit")
}

fn job_rows(document: &str) -> Vec<String> {
    document
        .lines()
        .filter(|l| l.contains("\"job\":"))
        .map(canonical)
        .collect()
}

const BATCH: &str = r#"[
{"algorithm": "greedy", "family": "grid", "n": 16, "seed": 5},
{"algorithm": "improved", "family": "torus", "n": 16, "seed": 6},
{"algorithm": "shortcut", "family": "lollipop", "n": 18, "seed": 7, "epsilon": 0.5}
]"#;

#[test]
fn drain_snapshot_restores_to_byte_identical_rows() {
    let path = scratch("drain-restore.snap");

    // Generation 1: serve the batch cold, snapshot on drain.
    let warm = start(NetConfig::default().snapshot_to(&path));
    let first = Client::new(warm.addr()).post("/jobs", BATCH).expect("batch");
    assert_eq!(first.status, 200);
    let first_rows = job_rows(&first.text());
    assert_eq!(first_rows.len(), 3);
    assert!(first_rows.iter().all(|r| !r.contains("\"error\"")), "{first_rows:?}");
    let summary = warm.drain(Duration::ZERO);
    assert!(summary.service.audit.is_ok(), "{summary:?}");
    match &summary.snapshot {
        Some(Ok(bytes)) => assert!(*bytes > 0),
        other => panic!("expected a written snapshot, got {other:?}"),
    }

    // Generation 2: restore, resubmit the same batch — every row must
    // come from the restored cache, byte-identical to generation 1.
    let restored = start(NetConfig::default().restore_from(&path));
    let stats = Client::new(restored.addr()).get("/stats").expect("stats").text();
    assert!(
        stats.contains("\"restored_entries\": 3"),
        "3 distinct keys restored: {stats}"
    );
    let again = Client::new(restored.addr()).post("/jobs", BATCH).expect("rebatch");
    assert_eq!(again.status, 200);
    let again_text = again.text();
    assert_eq!(
        again_text.matches("\"cache_hit\": true").count(),
        3,
        "every replay is a restored-cache hit: {again_text}"
    );
    assert_eq!(job_rows(&again_text), first_rows, "rows must be byte-identical");
    let second = restored.drain(Duration::ZERO);
    assert!(second.service.audit.is_ok(), "{second:?}");
    assert_eq!(second.service.stats.cache_hits, 3);
    assert!(second.snapshot.is_none(), "no snapshot path, no snapshot");
}

#[test]
fn interval_snapshots_land_while_serving() {
    let path = scratch("interval.snap");
    let handle = start(
        NetConfig::default()
            .snapshot_to(&path)
            .snapshot_interval(Duration::from_millis(40)),
    );
    let client = Client::new(handle.addr());
    let solve = client
        .post(
            "/solve",
            r#"[{"algorithm": "greedy", "family": "grid", "n": 16, "seed": 1}]"#,
        )
        .expect("solve");
    assert_eq!(solve.status, 200);
    // Wait out at least one timer tick, then the snapshot must exist
    // and decode to a state holding the solved job.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let state = loop {
        if let Ok(state) = decss_persist::read_snapshot(&path) {
            if !state.cache.is_empty() {
                break state;
            }
        }
        assert!(std::time::Instant::now() < deadline, "no interval snapshot appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(state.cache.len(), 1);
    assert_eq!(state.completed, 1);
    let stats = client.get("/stats").expect("stats").text();
    assert!(stats.contains("\"snapshot\""), "{stats}");
    assert!(stats.contains("\"last_write_ok\": true"), "{stats}");
    let summary = handle.drain(Duration::ZERO);
    assert!(matches!(summary.snapshot, Some(Ok(_))), "{summary:?}");
}

#[test]
fn a_hostile_snapshot_degrades_to_a_clean_cold_start() {
    let path = scratch("hostile.snap");
    std::fs::write(&path, b"DECSSNAPgarbage-after-the-magic").expect("plant garbage");
    let handle = start(NetConfig::default().restore_from(&path));
    let client = Client::new(handle.addr());
    let stats = client.get("/stats").expect("stats").text();
    assert!(
        stats.contains("\"restored_entries\": null"),
        "cold start must be visible: {stats}"
    );
    // The server still serves.
    let solve = client
        .post(
            "/solve",
            r#"[{"algorithm": "greedy", "family": "grid", "n": 16, "seed": 1}]"#,
        )
        .expect("solve");
    assert_eq!(solve.status, 200);
    let summary = handle.drain(Duration::ZERO);
    assert!(summary.service.audit.is_ok(), "{summary:?}");
    assert_eq!(summary.service.stats.completed, 1);
}

#[test]
fn a_missing_restore_file_is_also_a_cold_start() {
    let path = scratch("never-written.snap");
    let handle = start(NetConfig::default().restore_from(&path));
    let solve = Client::new(handle.addr())
        .post(
            "/solve",
            r#"[{"algorithm": "improved", "family": "grid", "n": 16, "seed": 2}]"#,
        )
        .expect("solve");
    assert_eq!(solve.status, 200);
    assert!(handle.drain(Duration::ZERO).service.audit.is_ok());
}
