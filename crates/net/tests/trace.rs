//! The trace replay determinism contract: replaying the same seeded
//! trace twice produces byte-identical job rows modulo the two
//! nondeterministic fields (`wall_ms`, `cache_hit`), with a balanced
//! drain audit both times — and the deliberately chaotic ingredients
//! (cancellations, deadline pressure) resolve to the same deterministic
//! error rows on every run.

use decss_net::jobs::FileAccess;
use decss_net::trace::{self, Arrival, GenConfig, ReplayConfig};

/// Strips the two fields the contract excuses: `"cache_hit"` (a rerun
/// may hit the cache where the first run missed) and `"wall_ms"` (wall
/// time is wall time).
fn strip(row: &str) -> String {
    let mut s = row.to_string();
    if let Some(i) = s.find("\"cache_hit\": ") {
        let j = i + s[i..].find(", ").expect("cache_hit is never the last field") + 2;
        s.replace_range(i..j, "");
    }
    if let Some(i) = s.find(", \"wall_ms\": ") {
        let j = i + s[i..].find('}').expect("row object closes");
        s.replace_range(i..j, "");
    }
    s
}

fn job_rows(document: &str) -> Vec<String> {
    document
        .lines()
        .filter(|l| l.contains("\"job\""))
        .map(strip)
        .collect()
}

#[test]
fn same_trace_twice_gives_identical_rows_and_balanced_audits() {
    let text = trace::generate(&GenConfig { seed: 42, jobs: 36, ..GenConfig::default() });
    let cfg = ReplayConfig { workers: 3, ..ReplayConfig::default() };
    let first = trace::replay(&text, FileAccess::Denied, &cfg).expect("first replay");
    let second = trace::replay(&text, FileAccess::Denied, &cfg).expect("second replay");
    assert_eq!(first.jobs, 36);
    assert!(
        first.audit.as_ref().expect("local audit").is_ok(),
        "{:?}",
        first.audit
    );
    assert!(
        second.audit.as_ref().expect("local audit").is_ok(),
        "{:?}",
        second.audit
    );

    let rows_a = job_rows(&first.document);
    let rows_b = job_rows(&second.document);
    assert_eq!(rows_a.len(), 36, "one row per event");
    assert_eq!(
        rows_a, rows_b,
        "job rows must be byte-identical modulo wall_ms/cache_hit"
    );
    // The error population (deliberate failures) is part of the
    // deterministic surface too.
    assert_eq!(first.failed, second.failed);
}

#[test]
fn chaotic_ingredients_resolve_deterministically() {
    // A hand-written trace with one of each hazard: a pre-cancelled
    // job, an already-expired deadline, and a failure storm.
    let text = format!(
        "{{\"trace_version\": {}, \"seed\": 0, \"profile\": \"hand\", \"arrival\": \"poisson\"}}\n\
         {{\"at_ms\": 0, \"algorithm\": \"improved\", \"family\": \"grid\", \"n\": 36, \"seed\": 1}}\n\
         {{\"at_ms\": 1, \"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 36, \"seed\": 1, \"cancel\": true}}\n\
         {{\"at_ms\": 2, \"algorithm\": \"improved\", \"family\": \"grid\", \"n\": 36, \"seed\": 1, \"deadline_ms\": 0}}\n\
         {{\"at_ms\": 3, \"algorithm\": \"improved\", \"family\": \"sparse-random\", \"n\": 24, \"seed\": 2, \"fail_edges\": 2}}\n",
        trace::TRACE_VERSION,
    );
    let cfg = ReplayConfig::default();
    let outcome = trace::replay(&text, FileAccess::Denied, &cfg).expect("replay");
    assert!(outcome.audit.expect("local audit").is_ok());
    let rows = job_rows(&outcome.document);
    assert_eq!(rows.len(), 4);
    assert!(!rows[0].contains("\"error\""), "plain job succeeds: {}", rows[0]);
    assert!(
        rows[1].contains("cancelled"),
        "pre-cancel must resolve to Cancelled: {}",
        rows[1]
    );
    assert!(
        rows[2].contains("expired"),
        "deadline 0 must expire in queue: {}",
        rows[2]
    );
    // Rerun: the exact same rows, including the error rows.
    let again = trace::replay(&text, FileAccess::Denied, &cfg).expect("replay again");
    assert_eq!(rows, job_rows(&again.document));
}

#[test]
fn bursty_traces_replay_and_pacing_respects_stamps() {
    let text =
        trace::generate(&GenConfig { seed: 9, jobs: 12, arrival: Arrival::Bursty, mean_gap_ms: 1 });
    let outcome = trace::replay(
        &text,
        FileAccess::Denied,
        &ReplayConfig { pace: true, ..ReplayConfig::default() },
    )
    .expect("paced replay");
    assert_eq!(outcome.jobs, 12);
    assert!(outcome.audit.expect("local audit").is_ok());
    assert!(outcome.document.contains("\"paced\": true"));
    assert!(outcome.document.contains("\"tail_ms\""));
}
