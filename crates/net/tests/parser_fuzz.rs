//! Property fuzzing of the HTTP request parser — the front door of the
//! network tier. Whatever bytes arrive, [`parse_request`] must return
//! one of exactly three things: `NeedMore` (incomplete input),
//! `Ready` (a fully framed request), or a *structured* error from the
//! known status set — never panic, and never buffer without bound
//! (every `NeedMore` answer is within the configured caps plus the
//! declared body length).

use decss_net::http::{parse_request, Limits, Parse};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statuses the parser is allowed to produce.
const PARSER_STATUSES: [u16; 5] = [400, 413, 431, 501, 505];

/// A deterministic, valid POST with `extra_headers` filler headers and
/// a `body_len`-byte printable body.
fn valid_request(seed: u64, body_len: usize, extra_headers: usize) -> (Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut head = String::from("POST /solve HTTP/1.1\r\nhost: decss\r\n");
    for i in 0..extra_headers {
        head.push_str(&format!("x-extra-{i}: value-{}\r\n", rng.gen_range(0u32..1_000)));
    }
    head.push_str(&format!("content-length: {body_len}\r\n\r\n"));
    let head_len = head.len();
    let mut bytes = head.into_bytes();
    bytes.extend((0..body_len).map(|_| rng.gen_range(b' '..=b'~')));
    (bytes, head_len)
}

/// The contract every input must satisfy: a classified outcome, never a
/// panic, errors only from the known set and always with a detail.
fn classify(buf: &[u8], limits: &Limits) -> &'static str {
    match parse_request(buf, limits) {
        Ok(Parse::NeedMore) => "need-more",
        Ok(Parse::Ready { consumed, .. }) => {
            assert!(consumed <= buf.len(), "consumed past the buffer");
            "ready"
        }
        Err(e) => {
            assert!(
                PARSER_STATUSES.contains(&e.status),
                "unknown parser status {} ({})",
                e.status,
                e.detail
            );
            assert!(!e.detail.is_empty(), "structured errors explain themselves");
            "rejected"
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prefix-closedness: the parser never rejects a prefix of a valid
    /// request — truncation looks like "more bytes coming", and the
    /// full request parses with every byte accounted for.
    #[test]
    fn every_truncation_of_a_valid_request_is_need_more(
        seed in 0u64..1_000,
        body_len in 0usize..200,
        extra_headers in 0usize..6,
        cut_seed in 0u64..1_000,
    ) {
        let limits = Limits::default();
        let (bytes, head_len) = valid_request(seed, body_len, extra_headers);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        for _ in 0..16 {
            let cut = rng.gen_range(0usize..bytes.len());
            prop_assert_eq!(
                classify(&bytes[..cut], &limits),
                "need-more",
                "a {}-byte prefix of a {}-byte valid request must not error",
                cut,
                bytes.len()
            );
        }
        match parse_request(&bytes, &limits) {
            Ok(Parse::Ready { request, consumed }) => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(request.body.len(), body_len);
                prop_assert_eq!(consumed, head_len + body_len);
                prop_assert_eq!(request.method.as_str(), "POST");
            }
            other => prop_assert!(false, "valid request did not parse: {:?}", other.is_ok()),
        }
    }

    /// Header mutation: flipping random bytes of a valid request yields
    /// a classified outcome, never a panic or an unknown status.
    #[test]
    fn random_mutations_always_classify(
        seed in 0u64..1_000,
        body_len in 0usize..120,
        extra_headers in 0usize..6,
        mutations in 1usize..8,
        mutate_seed in 0u64..10_000,
    ) {
        let limits = Limits::default();
        let (mut bytes, _) = valid_request(seed, body_len, extra_headers);
        let mut rng = StdRng::seed_from_u64(mutate_seed);
        for _ in 0..mutations {
            let at = rng.gen_range(0usize..bytes.len());
            bytes[at] = rng.gen_range(0u8..=255);
        }
        classify(&bytes, &limits); // the asserts inside are the property
    }

    /// Pure garbage classifies too.
    #[test]
    fn garbage_bytes_always_classify(len in 1usize..600, seed in 0u64..10_000) {
        let limits = Limits::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        classify(&bytes, &limits);
    }

    /// Body-length lies: a head declaring `n` bytes stays `NeedMore`
    /// until exactly `n` body bytes arrived, then consumes exactly the
    /// head plus `n` — trailing surplus is left for the next request.
    #[test]
    fn content_length_framing_is_exact(
        declared in 0usize..150,
        surplus in 0usize..40,
    ) {
        let limits = Limits::default();
        let head = format!("POST /jobs HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let mut bytes = head.clone().into_bytes();
        bytes.extend(std::iter::repeat_n(b'x', declared + surplus));
        for short in 0..declared.min(8) {
            let cut = head.len() + short;
            prop_assert_eq!(classify(&bytes[..cut], &limits), "need-more");
        }
        match parse_request(&bytes, &limits) {
            Ok(Parse::Ready { request, consumed }) => {
                prop_assert_eq!(consumed, head.len() + declared);
                prop_assert_eq!(request.body.len(), declared);
            }
            _ => prop_assert!(false, "framed request did not parse"),
        }
    }

    /// No unbounded buffering: with small caps, a terminator-less flood
    /// is rejected (431) as soon as the head cap is reached, and a
    /// declared body beyond the cap is rejected (413) from the head
    /// alone — the parser never asks for more bytes than the caps
    /// allow.
    #[test]
    fn floods_hit_the_caps(len in 0usize..2_000, seed in 0u64..1_000) {
        let limits = Limits { max_head_bytes: 256, max_headers: 8, max_body_bytes: 512 };
        let mut rng = StdRng::seed_from_u64(seed);
        // Printable junk with no \r\n\r\n terminator.
        let flood: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        match parse_request(&flood, &limits) {
            Ok(Parse::NeedMore) => prop_assert!(
                flood.len() < limits.max_head_bytes,
                "parser buffered {} bytes past the {}-byte head cap",
                flood.len(),
                limits.max_head_bytes
            ),
            Ok(Parse::Ready { .. }) => prop_assert!(false, "junk cannot frame a request"),
            Err(e) => prop_assert_eq!(e.status, 431),
        }
        let lie = format!(
            "POST /solve HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            limits.max_body_bytes + 1
        );
        match parse_request(lie.as_bytes(), &limits) {
            Err(e) => prop_assert_eq!(e.status, 413),
            _ => prop_assert!(false, "an oversized declared body must be rejected from the head"),
        }
    }
}
