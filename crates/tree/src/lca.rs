//! Lowest common ancestors and LCA *labels*.
//!
//! The paper (following Censor-Hillel & Dory and Alstrup et al.) assigns
//! each vertex an `O(log n)`-bit label from which any two adjacent
//! vertices can compute their LCA's label locally; the distributed
//! assignment costs `O(D + √n log* n)` rounds (Lemma 4.2), which the
//! round ledger charges once during setup. Logically we expose the
//! equivalent oracle: [`LcaLabel`] — a compact `(pre, post, depth)`
//! triple supporting ancestor tests (Observation 1) — plus binary-lifting
//! LCA queries.

use crate::euler::EulerTour;
use crate::rooted::RootedTree;
use decss_graphs::VertexId;

/// The `O(log n)`-bit label of a vertex: enough to decide ancestry
/// between any two labelled vertices (Observation 1 in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LcaLabel {
    /// Pre-order index.
    pub pre: u32,
    /// Post-order index.
    pub post: u32,
    /// Depth in the tree.
    pub depth: u32,
}

impl LcaLabel {
    /// Whether the vertex labelled `self` is an ancestor (inclusive) of
    /// the vertex labelled `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &LcaLabel) -> bool {
        self.pre <= other.pre && other.post <= self.post
    }
}

/// Centralized LCA oracle with per-vertex labels.
#[derive(Clone, Debug)]
pub struct LcaOracle {
    euler: EulerTour,
    depth: Vec<u32>,
    /// `up[k][v]` = 2^k-th ancestor of `v` (root maps to itself).
    up: Vec<Vec<u32>>,
}

impl LcaOracle {
    /// Builds the oracle in `O(n log n)`.
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        let euler = EulerTour::new(tree);
        let depth: Vec<u32> = (0..n).map(|v| tree.depth(VertexId(v as u32))).collect();
        let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
        let mut up = vec![vec![0u32; n]; levels];
        for v in 0..n {
            up[0][v] = tree.parent(VertexId(v as u32)).unwrap_or(tree.root()).0;
        }
        for k in 1..levels {
            for v in 0..n {
                up[k][v] = up[k - 1][up[k - 1][v] as usize];
            }
        }
        LcaOracle { euler, depth, up }
    }

    /// The label of `v`.
    pub fn label(&self, v: VertexId) -> LcaLabel {
        LcaLabel {
            pre: self.euler.pre(v),
            post: self.euler.post(v),
            depth: self.depth[v.index()],
        }
    }

    /// Whether `a` is an ancestor of `d` (inclusive).
    #[inline]
    pub fn is_ancestor(&self, a: VertexId, d: VertexId) -> bool {
        self.euler.is_ancestor(a, d)
    }

    /// Whether `a` is a proper ancestor of `d`.
    #[inline]
    pub fn is_proper_ancestor(&self, a: VertexId, d: VertexId) -> bool {
        self.euler.is_proper_ancestor(a, d)
    }

    /// Depth of `v`.
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// The underlying Euler tour.
    pub fn euler(&self) -> &EulerTour {
        &self.euler
    }

    /// The lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        if self.is_ancestor(u, v) {
            return u;
        }
        if self.is_ancestor(v, u) {
            return v;
        }
        // Lift u until its parent is an ancestor of v.
        let mut cur = u;
        for k in (0..self.up.len()).rev() {
            let cand = VertexId(self.up[k][cur.index()]);
            if !self.is_ancestor(cand, v) {
                cur = cand;
            }
        }
        VertexId(self.up[0][cur.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure_tree;
    use decss_graphs::{gen, EdgeId};

    #[test]
    fn lca_on_figure_tree() {
        let (_, t) = figure_tree();
        let oracle = LcaOracle::new(&t);
        assert_eq!(oracle.lca(VertexId(4), VertexId(5)), VertexId(2));
        assert_eq!(oracle.lca(VertexId(7), VertexId(8)), VertexId(6));
        assert_eq!(oracle.lca(VertexId(4), VertexId(8)), VertexId(2));
        assert_eq!(oracle.lca(VertexId(4), VertexId(3)), VertexId(3));
        assert_eq!(oracle.lca(VertexId(0), VertexId(8)), VertexId(0));
        assert_eq!(oracle.lca(VertexId(5), VertexId(5)), VertexId(5));
    }

    #[test]
    fn lca_matches_naive_on_random_tree() {
        let g = gen::gnp_two_ec(40, 0.1, 100, 9);
        let t = RootedTree::mst(&g);
        let oracle = LcaOracle::new(&t);
        let naive_lca = |mut a: VertexId, mut b: VertexId| {
            while a != b {
                if t.depth(a) >= t.depth(b) {
                    a = t.parent(a).unwrap();
                } else {
                    b = t.parent(b).unwrap();
                }
            }
            a
        };
        for a in 0..40u32 {
            for b in (a..40).step_by(3) {
                let (a, b) = (VertexId(a), VertexId(b));
                assert_eq!(oracle.lca(a, b), naive_lca(a, b), "lca({a},{b})");
            }
        }
    }

    #[test]
    fn labels_decide_ancestry() {
        let (_, t) = figure_tree();
        let oracle = LcaOracle::new(&t);
        let l2 = oracle.label(VertexId(2));
        let l4 = oracle.label(VertexId(4));
        let l5 = oracle.label(VertexId(5));
        assert!(l2.is_ancestor_of(&l4));
        assert!(l2.is_ancestor_of(&l5));
        assert!(!l4.is_ancestor_of(&l5));
        assert!(l4.is_ancestor_of(&l4));
    }

    #[test]
    fn lca_on_path_tree() {
        let g = gen::path(32);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        let t = RootedTree::new(&g, VertexId(0), &ids);
        let oracle = LcaOracle::new(&t);
        assert_eq!(oracle.lca(VertexId(31), VertexId(7)), VertexId(7));
        assert_eq!(oracle.depth(VertexId(31)), 31);
    }
}
