//! Euler tour (pre/post order) over a rooted tree: subtree intervals and
//! constant-time ancestor tests.

use crate::rooted::RootedTree;
use decss_graphs::VertexId;

/// Pre/post numbering of a rooted tree.
#[derive(Clone, Debug)]
pub struct EulerTour {
    pre: Vec<u32>,
    post: Vec<u32>,
    size: Vec<u32>,
}

impl EulerTour {
    /// Computes the tour (iteratively; deep trees are common here).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut size = vec![1u32; n];
        let mut timer = 0u32;
        // (vertex, child cursor)
        let mut stack: Vec<(VertexId, usize)> = vec![(tree.root(), 0)];
        pre[tree.root().index()] = timer;
        timer += 1;
        while let Some(&(v, cursor)) = stack.last() {
            let kids = tree.children(v);
            if cursor < kids.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let c = kids[cursor];
                pre[c.index()] = timer;
                timer += 1;
                stack.push((c, 0));
            } else {
                post[v.index()] = timer;
                timer += 1;
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    size[p.index()] += size[v.index()];
                }
            }
        }
        EulerTour { pre, post, size }
    }

    /// Pre-order index of `v`.
    #[inline]
    pub fn pre(&self, v: VertexId) -> u32 {
        self.pre[v.index()]
    }

    /// Post-order index of `v`.
    #[inline]
    pub fn post(&self, v: VertexId) -> u32 {
        self.post[v.index()]
    }

    /// Number of vertices in the subtree rooted at `v` (including `v`).
    #[inline]
    pub fn subtree_size(&self, v: VertexId) -> u32 {
        self.size[v.index()]
    }

    /// Whether `a` is an ancestor of `d` (inclusive: `a` is an ancestor
    /// of itself). O(1).
    #[inline]
    pub fn is_ancestor(&self, a: VertexId, d: VertexId) -> bool {
        self.pre[a.index()] <= self.pre[d.index()] && self.post[d.index()] <= self.post[a.index()]
    }

    /// Whether `a` is a *proper* ancestor of `d`.
    #[inline]
    pub fn is_proper_ancestor(&self, a: VertexId, d: VertexId) -> bool {
        a != d && self.is_ancestor(a, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure_tree;

    #[test]
    fn ancestor_tests() {
        let (_, t) = figure_tree();
        let e = EulerTour::new(&t);
        assert!(e.is_ancestor(VertexId(0), VertexId(8)));
        assert!(e.is_ancestor(VertexId(2), VertexId(4)));
        assert!(!e.is_ancestor(VertexId(3), VertexId(5)));
        assert!(e.is_ancestor(VertexId(3), VertexId(3)));
        assert!(!e.is_proper_ancestor(VertexId(3), VertexId(3)));
        assert!(e.is_proper_ancestor(VertexId(0), VertexId(1)));
    }

    #[test]
    fn subtree_sizes() {
        let (_, t) = figure_tree();
        let e = EulerTour::new(&t);
        assert_eq!(e.subtree_size(VertexId(0)), 9);
        assert_eq!(e.subtree_size(VertexId(2)), 7);
        assert_eq!(e.subtree_size(VertexId(6)), 3);
        assert_eq!(e.subtree_size(VertexId(4)), 1);
    }

    #[test]
    fn pre_intervals_nest() {
        let (_, t) = figure_tree();
        let e = EulerTour::new(&t);
        for v in t.order().iter().copied() {
            for &c in t.children(v) {
                assert!(e.pre(v) < e.pre(c));
                assert!(e.post(c) < e.post(v));
            }
        }
    }

    #[test]
    fn deep_tree_does_not_overflow() {
        use decss_graphs::{gen, EdgeId, VertexId};
        let g = gen::path(50_000);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        let t = RootedTree::new(&g, VertexId(0), &ids);
        let e = EulerTour::new(&t);
        assert!(e.is_ancestor(VertexId(0), VertexId(49_999)));
    }
}
