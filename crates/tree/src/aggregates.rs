//! Aggregate-function engines between tree edges and the non-tree edges
//! covering them (Claims 4.5 and 4.6).
//!
//! An *arc* is an ancestor-to-descendant non-tree edge `(anc, desc)` (in
//! the virtual graph `G'` every non-tree edge has this form); it covers
//! exactly the tree edges on the path `desc → anc`. The paper computes,
//! in `O(D + √n)` rounds per invocation:
//!
//! * for every arc simultaneously, an aggregate of values held by the
//!   tree edges it covers (Claim 4.5) — here: path sums and path minima
//!   via prefix sums / binary lifting,
//! * for every tree edge simultaneously, an aggregate of values held by
//!   the arcs covering it (Claim 4.6) — here: a depth sweep with a
//!   Fenwick tree / min segment tree over Euler positions. An arc
//!   `(anc, desc)` covers the edge above `v` iff `desc ∈ subtree(v)` and
//!   `depth(anc) < depth(v)`, which the sweep turns into a 1-D range
//!   query.
//!
//! The engines are *logically exact* reimplementations; the round ledger
//! charges `decss_congest::ledger::CostParams::aggregate` per invocation
//! (see DESIGN.md §3; `decss-congest` sits above this crate, so no
//! intra-doc link).
//!
//! Layout: the binary-lifting table is one strided `Vec<u32>` (`levels`
//! rows of `n`), and the Fenwick / segment-tree / lifting scratch the
//! sweeps run on is allocated once per engine and reset by `fill` at
//! each invocation start (the sweeps are dense, so a memset beats both
//! per-read generation checks and write-recording touched lists — both
//! were measured). The forward/reverse phases of the first algorithm
//! invoke these engines thousands of times per run; reuse removes the
//! per-invocation allocator round-trips. The pre-rewrite engine is
//! preserved in [`naive`] and the `cover_equivalence` suite pins this
//! one bit-identical to it.

use crate::lca::LcaOracle;
use crate::rooted::RootedTree;
use decss_graphs::VertexId;
use std::cell::RefCell;

/// An ancestor-to-descendant non-tree edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CoverArc {
    /// The upper endpoint (a proper ancestor of `desc`).
    pub anc: VertexId,
    /// The lower endpoint.
    pub desc: VertexId,
}

/// Empty segment-tree slot.
const SEG_EMPTY: (u64, u32) = (u64::MAX, u32::MAX);

/// Reusable sweep scratch, allocated once per engine and reset by a
/// straight `fill` at each invocation start. (Both per-read generation
/// checks and write-recording touched lists were measured slower here:
/// the sweeps are dense — nearly every slot is dirtied — so a memset is
/// the cheapest reset and the win over the naive engine is purely the
/// avoided allocator round-trips.) The strided path-min lifting buffer
/// is fully overwritten per use.
#[derive(Clone, Debug, Default)]
struct EngineScratch {
    fen: Vec<f64>,
    seg: Vec<(u64, u32)>,
    seg_size: usize,
    lift: Vec<u64>,
    pref_f: Vec<f64>,
    pref_u: Vec<u32>,
}

/// Aggregation engine for a fixed tree and arc set.
#[derive(Clone, Debug)]
pub struct CoverEngine {
    arcs: Vec<CoverArc>,
    /// Tree edges (child endpoints) sorted by depth, ascending.
    edges_by_depth: Vec<VertexId>,
    /// Arc indices sorted by `depth(anc)`, ascending.
    arcs_by_anc_depth: Vec<u32>,
    /// Binary-lifting ancestor table, strided: `up[k * n + v]` is the
    /// `2^k`-th ancestor of `v`.
    up: Vec<u32>,
    /// Number of lifting levels (the stride count of `up`).
    levels: usize,
    depth: Vec<u32>,
    pre: Vec<u32>,
    post: Vec<u32>,
    n: usize,
    /// Per-invocation sweep scratch (interior mutability: the sweep
    /// methods take `&self` and the scratch is logically stateless
    /// between calls).
    scratch: RefCell<EngineScratch>,
}

impl CoverEngine {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if any arc's `anc` is not a proper ancestor of its `desc`.
    pub fn new(tree: &RootedTree, lca: &LcaOracle, arcs: Vec<CoverArc>) -> Self {
        let n = tree.n();
        for a in &arcs {
            assert!(
                lca.is_proper_ancestor(a.anc, a.desc),
                "arc {:?} is not ancestor-to-descendant",
                a
            );
        }
        let depth: Vec<u32> = (0..n).map(|v| tree.depth(VertexId(v as u32))).collect();
        let pre: Vec<u32> = (0..n).map(|v| lca.euler().pre(VertexId(v as u32))).collect();
        let post: Vec<u32> = (0..n).map(|v| lca.euler().post(VertexId(v as u32))).collect();
        let mut edges_by_depth: Vec<VertexId> = tree.tree_edge_children().collect();
        edges_by_depth.sort_by_key(|v| depth[v.index()]);
        let mut arcs_by_anc_depth: Vec<u32> = (0..arcs.len() as u32).collect();
        arcs_by_anc_depth.sort_by_key(|&i| depth[arcs[i as usize].anc.index()]);
        let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
        let mut up = vec![0u32; levels * n];
        for v in 0..n {
            up[v] = tree.parent(VertexId(v as u32)).unwrap_or(tree.root()).0;
        }
        for k in 1..levels {
            let (done, row) = up.split_at_mut(k * n);
            let prev = &done[(k - 1) * n..];
            for v in 0..n {
                row[v] = prev[prev[v] as usize];
            }
        }
        let fen_len = 2 * n + 3; // Fenwick over 2n+2 positions, 1-based
        let mut seg_size = 1usize;
        while seg_size < 2 * n + 2 {
            seg_size <<= 1;
        }
        let scratch = RefCell::new(EngineScratch {
            fen: vec![0.0; fen_len],
            seg: vec![SEG_EMPTY; 2 * seg_size],
            seg_size,
            lift: Vec::new(),
            pref_f: Vec::new(),
            pref_u: Vec::new(),
        });
        CoverEngine {
            arcs,
            edges_by_depth,
            arcs_by_anc_depth,
            up,
            levels,
            depth,
            pre,
            post,
            n,
            scratch,
        }
    }

    /// The engine's arcs.
    pub fn arcs(&self) -> &[CoverArc] {
        &self.arcs
    }

    /// Whether arc `i` covers the tree edge above `v`. O(1).
    #[inline]
    pub fn covers(&self, i: usize, v: VertexId) -> bool {
        let a = self.arcs[i];
        self.depth[a.anc.index()] < self.depth[v.index()]
            && self.pre[v.index()] <= self.pre[a.desc.index()]
            && self.post[a.desc.index()] <= self.post[v.index()]
    }

    /// For every tree edge (indexed by child vertex), the number of
    /// active arcs covering it.
    pub fn covering_count(&self, active: &[bool]) -> Vec<u32> {
        let vals: Vec<f64> = active.iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
        self.covering_sum(active, &vals)
            .into_iter()
            .map(|x| x.round() as u32)
            .collect()
    }

    /// For every tree edge, the sum of `vals[i]` over active covering
    /// arcs `i`.
    pub fn covering_sum(&self, active: &[bool], vals: &[f64]) -> Vec<f64> {
        assert_eq!(active.len(), self.arcs.len());
        assert_eq!(vals.len(), self.arcs.len());
        let mut s = self.scratch.borrow_mut();
        s.fen.fill(0.0);
        let fen = &mut s.fen;
        let mut out = vec![0.0f64; self.n];
        let mut j = 0usize;
        for &v in &self.edges_by_depth {
            let d = self.depth[v.index()];
            while j < self.arcs_by_anc_depth.len() {
                let ai = self.arcs_by_anc_depth[j] as usize;
                if self.depth[self.arcs[ai].anc.index()] < d {
                    if active[ai] {
                        fen_add(fen, self.pre[self.arcs[ai].desc.index()] as usize, vals[ai]);
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            out[v.index()] =
                fen_range_sum(fen, self.pre[v.index()] as usize, self.post[v.index()] as usize);
        }
        out
    }

    /// For every tree edge, the active covering arc minimizing
    /// `(key, arc index)`, or `None` if uncovered.
    pub fn covering_argmin(&self, active: &[bool], keys: &[u64]) -> Vec<Option<(u64, u32)>> {
        assert_eq!(active.len(), self.arcs.len());
        assert_eq!(keys.len(), self.arcs.len());
        let mut s = self.scratch.borrow_mut();
        s.seg.fill(SEG_EMPTY);
        let EngineScratch { seg, seg_size, .. } = &mut *s;
        let seg_size = *seg_size;
        let mut out = vec![None; self.n];
        let mut j = 0usize;
        for &v in &self.edges_by_depth {
            let d = self.depth[v.index()];
            while j < self.arcs_by_anc_depth.len() {
                let ai = self.arcs_by_anc_depth[j] as usize;
                if self.depth[self.arcs[ai].anc.index()] < d {
                    if active[ai] {
                        seg_update(
                            seg,
                            seg_size,
                            self.pre[self.arcs[ai].desc.index()] as usize,
                            (keys[ai], ai as u32),
                        );
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            out[v.index()] = seg_range_min(
                seg,
                seg_size,
                self.pre[v.index()] as usize,
                self.post[v.index()] as usize,
            );
        }
        out
    }

    /// For every tree edge, the active covering arc minimizing a
    /// non-negative float key (ties by arc index).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any key is negative or NaN.
    pub fn covering_argmin_f64(&self, active: &[bool], keys: &[f64]) -> Vec<Option<(f64, u32)>> {
        let bit_keys: Vec<u64> = keys
            .iter()
            .map(|&k| {
                debug_assert!(k >= 0.0 && !k.is_nan(), "key {k} not a non-negative float");
                k.to_bits()
            })
            .collect();
        self.covering_argmin(active, &bit_keys)
            .into_iter()
            .map(|o| o.map(|(bits, i)| (f64::from_bits(bits), i)))
            .collect()
    }

    /// For every arc, the sum of `tvals[v]` over the tree edges (child
    /// endpoints `v`) it covers.
    pub fn covered_sum(&self, tvals: &[f64]) -> Vec<f64> {
        assert_eq!(tvals.len(), self.n);
        let mut s = self.scratch.borrow_mut();
        // Prefix sums root -> v over edge values.
        let pref = &mut s.pref_f;
        pref.clear();
        pref.resize(self.n, 0.0);
        for &v in &self.edges_by_depth {
            let p = self.up[v.index()] as usize;
            pref[v.index()] = pref[p] + tvals[v.index()];
        }
        self.arcs
            .iter()
            .map(|a| pref[a.desc.index()] - pref[a.anc.index()])
            .collect()
    }

    /// For every arc, the number of covered tree edges with `tmask` set.
    pub fn covered_count(&self, tmask: &[bool]) -> Vec<u32> {
        assert_eq!(tmask.len(), self.n);
        let mut s = self.scratch.borrow_mut();
        let pref = &mut s.pref_u;
        pref.clear();
        pref.resize(self.n, 0);
        for &v in &self.edges_by_depth {
            let p = self.up[v.index()] as usize;
            pref[v.index()] = pref[p] + u32::from(tmask[v.index()]);
        }
        self.arcs
            .iter()
            .map(|a| pref[a.desc.index()] - pref[a.anc.index()])
            .collect()
    }

    /// For every arc, the minimum of `keys[v]` over covered tree edges
    /// (`u64::MAX` if the path is empty, which cannot happen for a valid
    /// arc).
    pub fn covered_min(&self, keys: &[u64]) -> Vec<u64> {
        assert_eq!(keys.len(), self.n);
        let n = self.n;
        let levels = self.levels;
        let mut s = self.scratch.borrow_mut();
        // lift[k * n + v] = min key over the 2^k edges starting at the
        // edge above v and going up. Fully overwritten each call.
        let lift = &mut s.lift;
        lift.clear();
        lift.resize(levels * n, u64::MAX);
        lift[..n].copy_from_slice(keys);
        for k in 1..levels {
            let (done, row) = lift.split_at_mut(k * n);
            let prev = &done[(k - 1) * n..];
            let up_prev = &self.up[(k - 1) * n..k * n];
            for v in 0..n {
                row[v] = prev[v].min(prev[up_prev[v] as usize]);
            }
        }
        self.arcs
            .iter()
            .map(|a| {
                let mut len = self.depth[a.desc.index()] - self.depth[a.anc.index()];
                let mut cur = a.desc.index();
                let mut acc = u64::MAX;
                let mut k = 0usize;
                while len > 0 {
                    if len & 1 == 1 {
                        acc = acc.min(lift[k * n + cur]);
                        cur = self.up[k * n + cur] as usize;
                    }
                    len >>= 1;
                    k += 1;
                }
                acc
            })
            .collect()
    }
}

/// Fenwick point-add.
fn fen_add(data: &mut [f64], mut i: usize, v: f64) {
    i += 1;
    while i < data.len() {
        data[i] += v;
        i += i & i.wrapping_neg();
    }
}

/// Fenwick prefix sum of `[0, i]`.
fn fen_prefix(data: &[f64], mut i: usize) -> f64 {
    i += 1;
    let mut s = 0.0;
    while i > 0 {
        s += data[i];
        i -= i & i.wrapping_neg();
    }
    s
}

fn fen_range_sum(data: &[f64], lo: usize, hi: usize) -> f64 {
    let upper = fen_prefix(data, hi);
    if lo == 0 {
        upper
    } else {
        upper - fen_prefix(data, lo - 1)
    }
}

/// Segment-tree point update (min).
fn seg_update(data: &mut [(u64, u32)], size: usize, i: usize, v: (u64, u32)) {
    let mut i = i + size;
    if v < data[i] {
        data[i] = v;
        i >>= 1;
        while i >= 1 {
            let best = data[2 * i].min(data[2 * i + 1]);
            if data[i] == best {
                break;
            }
            data[i] = best;
            i >>= 1;
        }
    }
}

fn seg_range_min(data: &[(u64, u32)], size: usize, lo: usize, hi: usize) -> Option<(u64, u32)> {
    let (mut lo, mut hi) = (lo + size, hi + size + 1);
    let mut best = SEG_EMPTY;
    while lo < hi {
        if lo & 1 == 1 {
            best = best.min(data[lo]);
            lo += 1;
        }
        if hi & 1 == 1 {
            hi -= 1;
            best = best.min(data[hi]);
        }
        lo >>= 1;
        hi >>= 1;
    }
    (best != SEG_EMPTY).then_some(best)
}

pub mod naive {
    //! The pre-rewrite cover engine — nested `Vec<Vec<_>>` lifting
    //! tables and per-invocation Fenwick / segment-tree allocations —
    //! preserved as the reference the `cover_equivalence` suite and the
    //! `bench_shortcut_pipeline` `naive` rows compare against. Not used
    //! on any production path.

    use super::CoverArc;
    use crate::lca::LcaOracle;
    use crate::rooted::RootedTree;
    use decss_graphs::VertexId;

    /// Pre-rewrite aggregation engine (allocates per invocation).
    #[derive(Clone, Debug)]
    pub struct NaiveCoverEngine {
        arcs: Vec<CoverArc>,
        edges_by_depth: Vec<VertexId>,
        arcs_by_anc_depth: Vec<u32>,
        up: Vec<Vec<u32>>,
        depth: Vec<u32>,
        pre: Vec<u32>,
        post: Vec<u32>,
        n: usize,
    }

    impl NaiveCoverEngine {
        /// Builds the engine (same contract as
        /// [`super::CoverEngine::new`]).
        ///
        /// # Panics
        ///
        /// Panics if any arc is not ancestor-to-descendant.
        pub fn new(tree: &RootedTree, lca: &LcaOracle, arcs: Vec<CoverArc>) -> Self {
            let n = tree.n();
            for a in &arcs {
                assert!(
                    lca.is_proper_ancestor(a.anc, a.desc),
                    "arc {:?} is not ancestor-to-descendant",
                    a
                );
            }
            let depth: Vec<u32> = (0..n).map(|v| tree.depth(VertexId(v as u32))).collect();
            let pre: Vec<u32> = (0..n).map(|v| lca.euler().pre(VertexId(v as u32))).collect();
            let post: Vec<u32> = (0..n).map(|v| lca.euler().post(VertexId(v as u32))).collect();
            let mut edges_by_depth: Vec<VertexId> = tree.tree_edge_children().collect();
            edges_by_depth.sort_by_key(|v| depth[v.index()]);
            let mut arcs_by_anc_depth: Vec<u32> = (0..arcs.len() as u32).collect();
            arcs_by_anc_depth.sort_by_key(|&i| depth[arcs[i as usize].anc.index()]);
            let levels = (usize::BITS - n.leading_zeros()).max(1) as usize;
            let mut up = vec![vec![0u32; n]; levels];
            for v in 0..n {
                up[0][v] = tree.parent(VertexId(v as u32)).unwrap_or(tree.root()).0;
            }
            for k in 1..levels {
                for v in 0..n {
                    up[k][v] = up[k - 1][up[k - 1][v] as usize];
                }
            }
            NaiveCoverEngine {
                arcs,
                edges_by_depth,
                arcs_by_anc_depth,
                up,
                depth,
                pre,
                post,
                n,
            }
        }

        /// See [`super::CoverEngine::covering_count`].
        pub fn covering_count(&self, active: &[bool]) -> Vec<u32> {
            let vals: Vec<f64> = active.iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
            self.covering_sum(active, &vals)
                .into_iter()
                .map(|x| x.round() as u32)
                .collect()
        }

        /// See [`super::CoverEngine::covering_sum`].
        pub fn covering_sum(&self, active: &[bool], vals: &[f64]) -> Vec<f64> {
            assert_eq!(active.len(), self.arcs.len());
            assert_eq!(vals.len(), self.arcs.len());
            let mut fen = Fenwick::new(2 * self.n + 2);
            let mut out = vec![0.0f64; self.n];
            let mut j = 0usize;
            for &v in &self.edges_by_depth {
                let d = self.depth[v.index()];
                while j < self.arcs_by_anc_depth.len() {
                    let ai = self.arcs_by_anc_depth[j] as usize;
                    if self.depth[self.arcs[ai].anc.index()] < d {
                        if active[ai] {
                            fen.add(self.pre[self.arcs[ai].desc.index()] as usize, vals[ai]);
                        }
                        j += 1;
                    } else {
                        break;
                    }
                }
                out[v.index()] =
                    fen.range_sum(self.pre[v.index()] as usize, self.post[v.index()] as usize);
            }
            out
        }

        /// See [`super::CoverEngine::covering_argmin`].
        pub fn covering_argmin(&self, active: &[bool], keys: &[u64]) -> Vec<Option<(u64, u32)>> {
            assert_eq!(active.len(), self.arcs.len());
            assert_eq!(keys.len(), self.arcs.len());
            let mut seg = MinSegTree::new(2 * self.n + 2);
            let mut out = vec![None; self.n];
            let mut j = 0usize;
            for &v in &self.edges_by_depth {
                let d = self.depth[v.index()];
                while j < self.arcs_by_anc_depth.len() {
                    let ai = self.arcs_by_anc_depth[j] as usize;
                    if self.depth[self.arcs[ai].anc.index()] < d {
                        if active[ai] {
                            seg.update(
                                self.pre[self.arcs[ai].desc.index()] as usize,
                                (keys[ai], ai as u32),
                            );
                        }
                        j += 1;
                    } else {
                        break;
                    }
                }
                let best =
                    seg.range_min(self.pre[v.index()] as usize, self.post[v.index()] as usize);
                out[v.index()] = best;
            }
            out
        }

        /// See [`super::CoverEngine::covered_sum`].
        pub fn covered_sum(&self, tvals: &[f64]) -> Vec<f64> {
            assert_eq!(tvals.len(), self.n);
            let mut pref = vec![0.0f64; self.n];
            for &v in &self.edges_by_depth {
                let p = self.up[0][v.index()] as usize;
                pref[v.index()] = pref[p] + tvals[v.index()];
            }
            self.arcs
                .iter()
                .map(|a| pref[a.desc.index()] - pref[a.anc.index()])
                .collect()
        }

        /// See [`super::CoverEngine::covered_count`].
        pub fn covered_count(&self, tmask: &[bool]) -> Vec<u32> {
            assert_eq!(tmask.len(), self.n);
            let mut pref = vec![0u32; self.n];
            for &v in &self.edges_by_depth {
                let p = self.up[0][v.index()] as usize;
                pref[v.index()] = pref[p] + u32::from(tmask[v.index()]);
            }
            self.arcs
                .iter()
                .map(|a| pref[a.desc.index()] - pref[a.anc.index()])
                .collect()
        }

        /// See [`super::CoverEngine::covered_min`].
        pub fn covered_min(&self, keys: &[u64]) -> Vec<u64> {
            assert_eq!(keys.len(), self.n);
            let levels = self.up.len();
            let mut lift = vec![vec![u64::MAX; self.n]; levels];
            lift[0].copy_from_slice(keys);
            for k in 1..levels {
                for v in 0..self.n {
                    let mid = self.up[k - 1][v] as usize;
                    lift[k][v] = lift[k - 1][v].min(lift[k - 1][mid]);
                }
            }
            self.arcs
                .iter()
                .map(|a| {
                    let mut len = self.depth[a.desc.index()] - self.depth[a.anc.index()];
                    let mut cur = a.desc.index();
                    let mut acc = u64::MAX;
                    let mut k = 0usize;
                    while len > 0 {
                        if len & 1 == 1 {
                            acc = acc.min(lift[k][cur]);
                            cur = self.up[k][cur] as usize;
                        }
                        len >>= 1;
                        k += 1;
                    }
                    acc
                })
                .collect()
        }
    }

    /// Fenwick tree over f64 (point add, range sum), allocated fresh
    /// per invocation.
    #[derive(Clone, Debug)]
    struct Fenwick {
        data: Vec<f64>,
    }

    impl Fenwick {
        fn new(n: usize) -> Self {
            Fenwick { data: vec![0.0; n + 1] }
        }

        fn add(&mut self, mut i: usize, v: f64) {
            i += 1;
            while i < self.data.len() {
                self.data[i] += v;
                i += i & i.wrapping_neg();
            }
        }

        fn prefix(&self, mut i: usize) -> f64 {
            // Sum of [0, i] inclusive.
            i += 1;
            let mut s = 0.0;
            while i > 0 {
                s += self.data[i];
                i -= i & i.wrapping_neg();
            }
            s
        }

        fn range_sum(&self, lo: usize, hi: usize) -> f64 {
            let upper = self.prefix(hi);
            if lo == 0 {
                upper
            } else {
                upper - self.prefix(lo - 1)
            }
        }
    }

    /// Min segment tree over `(u64, u32)` pairs (point update, range
    /// min), allocated fresh per invocation.
    #[derive(Clone, Debug)]
    struct MinSegTree {
        size: usize,
        data: Vec<(u64, u32)>,
    }

    impl MinSegTree {
        fn new(n: usize) -> Self {
            let mut size = 1;
            while size < n {
                size <<= 1;
            }
            MinSegTree { size, data: vec![super::SEG_EMPTY; 2 * size] }
        }

        fn update(&mut self, i: usize, v: (u64, u32)) {
            let mut i = i + self.size;
            if v < self.data[i] {
                self.data[i] = v;
                i >>= 1;
                while i >= 1 {
                    let best = self.data[2 * i].min(self.data[2 * i + 1]);
                    if self.data[i] == best {
                        break;
                    }
                    self.data[i] = best;
                    i >>= 1;
                }
            }
        }

        fn range_min(&self, lo: usize, hi: usize) -> Option<(u64, u32)> {
            let (mut lo, mut hi) = (lo + self.size, hi + self.size + 1);
            let mut best = super::SEG_EMPTY;
            while lo < hi {
                if lo & 1 == 1 {
                    best = best.min(self.data[lo]);
                    lo += 1;
                }
                if hi & 1 == 1 {
                    hi -= 1;
                    best = best.min(self.data[hi]);
                }
                lo >>= 1;
                hi >>= 1;
            }
            (best != super::SEG_EMPTY).then_some(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{binary_tree, figure_tree};
    use decss_graphs::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Naive cover test straight from the definition: `t` is on the tree
    /// path between the arc endpoints.
    fn naive_covers(tree: &RootedTree, a: CoverArc, v: VertexId) -> bool {
        let mut cur = a.desc;
        while cur != a.anc {
            if cur == v {
                return true;
            }
            cur = tree.parent(cur).expect("anc is an ancestor");
        }
        false
    }

    fn random_arcs(tree: &RootedTree, lca: &LcaOracle, count: usize, seed: u64) -> Vec<CoverArc> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = tree.n() as u32;
        let mut arcs = Vec::new();
        while arcs.len() < count {
            let a = VertexId(rng.gen_range(0..n));
            let d = VertexId(rng.gen_range(0..n));
            if lca.is_proper_ancestor(a, d) {
                arcs.push(CoverArc { anc: a, desc: d });
            }
        }
        arcs
    }

    #[test]
    fn covers_matches_naive() {
        let (_, t) = binary_tree(5);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 40, 1);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        for (i, &a) in arcs.iter().enumerate() {
            for v in t.tree_edge_children() {
                assert_eq!(
                    engine.covers(i, v),
                    naive_covers(&t, a, v),
                    "arc {a:?} edge above {v}"
                );
            }
        }
    }

    #[test]
    fn covering_sum_and_count_match_naive() {
        let (_, t) = binary_tree(5);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 30, 2);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<f64> = (0..arcs.len()).map(|_| rng.gen_range(0.0..10.0)).collect();
        let active: Vec<bool> = (0..arcs.len()).map(|_| rng.gen_bool(0.7)).collect();
        let sums = engine.covering_sum(&active, &vals);
        let counts = engine.covering_count(&active);
        for v in t.tree_edge_children() {
            let mut expect_sum = 0.0;
            let mut expect_count = 0;
            for (i, &a) in arcs.iter().enumerate() {
                if active[i] && naive_covers(&t, a, v) {
                    expect_sum += vals[i];
                    expect_count += 1;
                }
            }
            assert!((sums[v.index()] - expect_sum).abs() < 1e-9, "sum at {v}");
            assert_eq!(counts[v.index()], expect_count, "count at {v}");
        }
    }

    #[test]
    fn repeated_invocations_reuse_scratch_cleanly() {
        // The epoch-reset scratch must not leak state between calls:
        // the same query twice gives bit-identical answers, and an
        // interleaved different query does not disturb the next one.
        let (_, t) = binary_tree(6);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 60, 12);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        let mut rng = StdRng::seed_from_u64(13);
        let vals: Vec<f64> = (0..arcs.len()).map(|_| rng.gen_range(0.0..10.0)).collect();
        let keys: Vec<u64> = (0..arcs.len()).map(|_| rng.gen_range(0..1000)).collect();
        let active: Vec<bool> = (0..arcs.len()).map(|_| rng.gen_bool(0.6)).collect();
        let all = vec![true; arcs.len()];
        let sum1 = engine.covering_sum(&active, &vals);
        let min1 = engine.covering_argmin(&active, &keys);
        let _ = engine.covering_sum(&all, &vals); // interleaved different query
        let _ = engine.covering_argmin(&all, &keys);
        let sum2 = engine.covering_sum(&active, &vals);
        let min2 = engine.covering_argmin(&active, &keys);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&sum1), bits(&sum2));
        assert_eq!(min1, min2);
        // The strided lifting buffer is also reused: same path minima
        // on the second call.
        let vkeys: Vec<u64> = (0..t.n() as u64).map(|i| i * 17 % 101).collect();
        let pm1 = engine.covered_min(&vkeys);
        let pm2 = engine.covered_min(&vkeys);
        assert_eq!(pm1, pm2);
    }

    #[test]
    fn covering_argmin_matches_naive() {
        let (_, t) = binary_tree(5);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 25, 4);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let keys: Vec<u64> = (0..arcs.len()).map(|_| rng.gen_range(0..100)).collect();
        let active: Vec<bool> = (0..arcs.len()).map(|_| rng.gen_bool(0.8)).collect();
        let got = engine.covering_argmin(&active, &keys);
        for v in t.tree_edge_children() {
            let expect = arcs
                .iter()
                .enumerate()
                .filter(|&(i, &a)| active[i] && naive_covers(&t, a, v))
                .map(|(i, _)| (keys[i], i as u32))
                .min();
            assert_eq!(got[v.index()], expect, "argmin at {v}");
        }
    }

    #[test]
    fn covered_aggregates_match_naive() {
        let (_, t) = binary_tree(5);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 25, 6);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let n = t.n();
        let tvals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
        let tmask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
        let sums = engine.covered_sum(&tvals);
        let counts = engine.covered_count(&tmask);
        let mins = engine.covered_min(&keys);
        for (i, &a) in arcs.iter().enumerate() {
            let path: Vec<VertexId> = {
                let mut p = Vec::new();
                let mut cur = a.desc;
                while cur != a.anc {
                    p.push(cur);
                    cur = t.parent(cur).unwrap();
                }
                p
            };
            let es: f64 = path.iter().map(|v| tvals[v.index()]).sum();
            let ec: u32 = path.iter().map(|v| u32::from(tmask[v.index()])).sum();
            let em: u64 = path.iter().map(|v| keys[v.index()]).min().unwrap();
            assert!((sums[i] - es).abs() < 1e-9, "sum of arc {i}");
            assert_eq!(counts[i], ec, "count of arc {i}");
            assert_eq!(mins[i], em, "min of arc {i}");
        }
    }

    #[test]
    fn covering_argmin_f64_roundtrips() {
        let (_, t) = figure_tree();
        let lca = LcaOracle::new(&t);
        let arcs = vec![
            CoverArc { anc: VertexId(0), desc: VertexId(4) },
            CoverArc { anc: VertexId(2), desc: VertexId(4) },
        ];
        let engine = CoverEngine::new(&t, &lca, arcs);
        let got = engine.covering_argmin_f64(&[true, true], &[2.5, 1.25]);
        // Edge above 4 is covered by both arcs; arc 1 has the smaller key.
        let (val, idx) = got[4].unwrap();
        assert_eq!(idx, 1);
        assert!((val - 1.25).abs() < 1e-12);
        // Edge above 1 is covered only by arc 0.
        assert_eq!(got[1].unwrap().1, 0);
        // Edge above 5 is covered by neither.
        assert_eq!(got[5], None);
    }

    #[test]
    #[should_panic(expected = "ancestor-to-descendant")]
    fn non_ancestor_arcs_rejected() {
        let (_, t) = figure_tree();
        let lca = LcaOracle::new(&t);
        let _ = CoverEngine::new(&t, &lca, vec![CoverArc { anc: VertexId(4), desc: VertexId(5) }]);
    }

    mod properties {
        use super::naive_covers;
        use crate::aggregates::{CoverArc, CoverEngine};
        use crate::lca::LcaOracle;
        use crate::rooted::RootedTree;
        use decss_graphs::VertexId;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Random rooted tree (parent(v) in 0..v) plus random valid arcs.
        fn tree_and_arcs() -> impl Strategy<Value = (RootedTree, Vec<CoverArc>)> {
            (4usize..48, 0u64..10_000).prop_map(|(n, seed)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let edges: Vec<(u32, u32, u64)> =
                    (1..n as u32).map(|v| (rng.gen_range(0..v), v, 1)).collect();
                let g = decss_graphs::Graph::from_edges(n, edges).unwrap();
                let ids: Vec<decss_graphs::EdgeId> = g.edge_ids().collect();
                let tree = RootedTree::new(&g, VertexId(0), &ids);
                let lca = LcaOracle::new(&tree);
                let mut arcs = Vec::new();
                for _ in 0..3 * n {
                    let a = VertexId(rng.gen_range(0..n as u32));
                    let d = VertexId(rng.gen_range(0..n as u32));
                    if lca.is_proper_ancestor(a, d) {
                        arcs.push(CoverArc { anc: a, desc: d });
                    }
                }
                (tree, arcs)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// The sweep engine agrees with the from-the-definition cover
            /// test on arbitrary random trees (the unit tests only used
            /// binary trees).
            #[test]
            fn covering_count_matches_naive_on_random_trees(
                (tree, arcs) in tree_and_arcs()
            ) {
                let lca = LcaOracle::new(&tree);
                let engine = CoverEngine::new(&tree, &lca, arcs.clone());
                let active = vec![true; arcs.len()];
                let counts = engine.covering_count(&active);
                for v in tree.tree_edge_children() {
                    let expect = arcs
                        .iter()
                        .filter(|&&a| naive_covers(&tree, a, v))
                        .count() as u32;
                    prop_assert_eq!(counts[v.index()], expect, "edge above {}", v);
                }
            }

            /// Path aggregates (covered_*) agree with direct walks.
            #[test]
            fn covered_count_matches_naive_on_random_trees(
                (tree, arcs) in tree_and_arcs()
            ) {
                let lca = LcaOracle::new(&tree);
                let engine = CoverEngine::new(&tree, &lca, arcs.clone());
                let mask = vec![true; tree.n()];
                let lens = engine.covered_count(&mask);
                for (i, &a) in arcs.iter().enumerate() {
                    let expect =
                        lca.depth(a.desc) - lca.depth(a.anc);
                    prop_assert_eq!(lens[i], expect, "arc {:?}", a);
                }
            }
        }
    }

    #[test]
    fn gnp_engine_consistency() {
        let g = gen::gnp_two_ec(60, 0.08, 40, 8);
        let t = RootedTree::mst(&g);
        let lca = LcaOracle::new(&t);
        let arcs = random_arcs(&t, &lca, 50, 9);
        let engine = CoverEngine::new(&t, &lca, arcs.clone());
        let active = vec![true; arcs.len()];
        let counts = engine.covering_count(&active);
        let path_lens = engine.covered_count(&vec![true; t.n()]);
        // Double counting: sum over tree edges of covering counts equals
        // sum over arcs of path lengths.
        let a: u32 = counts.iter().sum();
        let b: u32 = path_lens.iter().sum();
        assert_eq!(a, b);
    }
}
