#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
//! Tree machinery for the distributed 2-ECSS algorithms.
//!
//! Everything in the paper happens relative to a rooted spanning tree
//! `T` (the MST): non-tree edges *cover* tree paths, the tree is
//! decomposed into **layers** (Section 3.2 / 4.3) and into **segments**
//! (Section 4.2.1), and both algorithms constantly evaluate aggregate
//! functions between tree edges and the non-tree edges covering them
//! (Claims 4.5 / 4.6). This crate implements all of that:
//!
//! * [`RootedTree`] — parent/children/depth structure over a spanning
//!   tree of a [`decss_graphs::Graph`]; tree edges are identified by
//!   their child endpoint,
//! * [`euler::EulerTour`] — pre/post intervals and subtree tests,
//! * [`lca::LcaOracle`] — `O(log n)`-bit labels supporting ancestor
//!   tests plus binary-lifting LCA queries,
//! * [`hld::HeavyLight`] — heavy-light decomposition (Definition 5.3),
//! * [`layering::Layering`] — the junction-contraction layering with
//!   `O(log n)` layers, layer paths, and `leaf(t)` values,
//! * [`segments::SegmentDecomposition`] — `O(√n)` edge-disjoint segments
//!   of diameter `O(√n)` with highways and a skeleton tree,
//! * [`aggregates`] — efficient engines for "each non-tree edge
//!   aggregates over the tree edges it covers" and "each tree edge
//!   aggregates over the non-tree edges covering it".
//!
//! # Example
//!
//! ```
//! use decss_graphs::gen;
//! use decss_tree::{EulerTour, Layering, RootedTree, SegmentDecomposition};
//!
//! let g = gen::gnp_two_ec(64, 0.06, 32, 1);
//! let tree = RootedTree::mst(&g);
//! let layering = Layering::new(&tree);
//! assert!(layering.num_layers() as f64 <= (g.n() as f64).log2() + 1.0);
//! let euler = EulerTour::new(&tree);
//! let segments = SegmentDecomposition::new(&tree, &euler);
//! assert!(segments.len() as f64 <= 4.0 * (g.n() as f64).sqrt() + 2.0);
//! ```

pub mod aggregates;
pub mod euler;
pub mod hld;
pub mod layering;
pub mod lca;
pub mod rooted;
pub mod segments;

#[cfg(test)]
pub(crate) mod testutil;

pub use euler::EulerTour;
pub use hld::HeavyLight;
pub use layering::Layering;
pub use lca::LcaOracle;
pub use rooted::RootedTree;
pub use segments::SegmentDecomposition;
