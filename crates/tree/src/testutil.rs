//! Shared test fixtures for the tree crate.

use crate::rooted::RootedTree;
use decss_graphs::{EdgeId, Graph, VertexId};

/// A small tree shaped like the paper's Figure 1 (left): a stem with a
/// junction at vertex 2 carrying a two-edge leg (3-4), a single-edge leg
/// (5), and a second junction (6) with two single-edge legs (7, 8).
///
/// Expected layering (Strahler): edges above 3,4,5,7,8 are layer 1;
/// edges above 2,6 — wait, edge above 6 is layer 2 (junction 6 has two
/// layer-1 legs); edges above 1,2 are layer 2? Vertex 2 has children
/// layers [1 (leg 3-4), 1 (leg 5), 2 (edge above 6)] → max 2 unique →
/// edge above 2 is layer 2, continuing through vertex 1 to the root.
pub(crate) fn figure_tree() -> (Graph, RootedTree) {
    let edges = [
        (0, 1, 1),
        (1, 2, 1),
        (2, 3, 1),
        (3, 4, 1),
        (2, 5, 1),
        (2, 6, 1),
        (6, 7, 1),
        (6, 8, 1),
    ];
    let g = Graph::from_edges(9, edges).unwrap();
    let ids: Vec<EdgeId> = g.edge_ids().collect();
    let t = RootedTree::new(&g, VertexId(0), &ids);
    (g, t)
}

/// A pure path rooted at one end: 0-1-2-...-(n-1).
pub(crate) fn path_tree(n: usize) -> (Graph, RootedTree) {
    let g = decss_graphs::gen::path(n);
    let ids: Vec<EdgeId> = g.edge_ids().collect();
    let t = RootedTree::new(&g, VertexId(0), &ids);
    (g, t)
}

/// A complete binary tree with `levels` levels (root at vertex 0).
pub(crate) fn binary_tree(levels: u32) -> (Graph, RootedTree) {
    let n = (1usize << levels) - 1;
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        edges.push(((v - 1) / 2, v, 1));
    }
    let g = Graph::from_edges(n, edges).unwrap();
    let ids: Vec<EdgeId> = g.edge_ids().collect();
    let t = RootedTree::new(&g, VertexId(0), &ids);
    (g, t)
}
