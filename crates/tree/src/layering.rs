//! The layering decomposition of the tree (Sections 3.2 and 4.3).
//!
//! Layer 1 consists of the tree paths between each leaf and its lowest
//! junction ancestor; contracting them yields a smaller tree whose
//! leaf-to-junction paths form layer 2, and so on. Equivalently, the
//! layer of the edge above `v` is the *Strahler number* of `v`:
//!
//! * a leaf has Strahler number 1,
//! * a vertex whose children have numbers `l1 >= l2 >= ...` has number
//!   `l1` if `l1 > l2` (or only one child), and `l1 + 1` if `l1 == l2`.
//!
//! Each layer is a union of vertex-disjoint tree paths; along any
//! leaf-to-root path the layer numbers are non-decreasing (Claim 4.8's
//! premise); and there are at most `log2(#leaves) + 1` layers
//! (Claim 4.7). The distributed construction costs
//! `O((D + √n) log n)` rounds (Claim 4.10), charged by the round ledger.

use crate::rooted::RootedTree;
use decss_graphs::VertexId;

/// Identifier of a layer path (dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathId(pub u32);

/// One maximal path of a layer.
#[derive(Clone, Debug)]
pub struct LayerPath {
    /// The layer this path belongs to (1-based).
    pub layer: u32,
    /// The path's tree edges, identified by child endpoints, bottom-up.
    pub edges: Vec<VertexId>,
    /// The lowest vertex of the path — `leaf(P)` in the paper.
    pub leaf: VertexId,
    /// The highest vertex of the path (the parent of the topmost edge).
    pub top: VertexId,
}

/// The layering decomposition.
#[derive(Clone, Debug)]
pub struct Layering {
    /// `layer[v]` = layer of the edge above `v`; 0 (unused) for the root.
    layer: Vec<u32>,
    /// `leaf_of[v]` = `leaf(t)` for the edge above `v`.
    leaf_of: Vec<VertexId>,
    /// `path_of[v]` = the layer path containing the edge above `v`.
    path_of: Vec<PathId>,
    paths: Vec<LayerPath>,
    num_layers: u32,
}

impl Layering {
    /// Computes the layering of a rooted tree.
    ///
    /// # Panics
    ///
    /// Panics on a single-vertex tree (there are no tree edges to layer).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        assert!(n >= 2, "layering needs at least one tree edge");
        let mut layer = vec![0u32; n];
        // Strahler numbers, children before parents (reverse BFS order).
        for &v in tree.order().iter().rev() {
            let kids = tree.children(v);
            if v == tree.root() {
                continue;
            }
            if kids.is_empty() {
                layer[v.index()] = 1;
                continue;
            }
            let mut best = 0u32;
            let mut second = 0u32;
            for &c in kids {
                let l = layer[c.index()];
                if l > best {
                    second = best;
                    best = l;
                } else if l > second {
                    second = l;
                }
            }
            layer[v.index()] = if kids.len() >= 2 && best == second {
                best + 1
            } else {
                best
            };
        }

        // leaf(t) and path identification: the path of layer i containing
        // the edge above v extends through the unique child with the same
        // layer, if any.
        let mut leaf_of = vec![VertexId(0); n];
        let mut path_of = vec![PathId(u32::MAX); n];
        let mut paths: Vec<LayerPath> = Vec::new();
        for &v in tree.order().iter().rev() {
            if v == tree.root() {
                continue;
            }
            let continuation = tree
                .children(v)
                .iter()
                .copied()
                .find(|&c| layer[c.index()] == layer[v.index()]);
            match continuation {
                Some(c) => {
                    leaf_of[v.index()] = leaf_of[c.index()];
                    path_of[v.index()] = path_of[c.index()];
                    let pid = path_of[c.index()];
                    paths[pid.0 as usize].edges.push(v);
                }
                None => {
                    let pid = PathId(paths.len() as u32);
                    leaf_of[v.index()] = v;
                    path_of[v.index()] = pid;
                    paths.push(LayerPath {
                        layer: layer[v.index()],
                        edges: vec![v],
                        leaf: v,
                        top: v, // fixed below
                    });
                }
            }
        }
        // Fix the `top` of each path: parent of its highest edge.
        for p in &mut paths {
            let highest_child = *p.edges.last().expect("paths are non-empty");
            p.top = tree.parent(highest_child).expect("non-root child");
        }
        let num_layers = layer.iter().copied().max().unwrap_or(0);
        Layering { layer, leaf_of, path_of, paths, num_layers }
    }

    /// Layer of the tree edge above `v` (1-based).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is the root.
    #[inline]
    pub fn layer(&self, v: VertexId) -> u32 {
        debug_assert_ne!(self.layer[v.index()], 0, "the root has no edge above it");
        self.layer[v.index()]
    }

    /// `leaf(t)` for the tree edge above `v`: the lowest vertex of the
    /// layer path containing it.
    #[inline]
    pub fn leaf_of(&self, v: VertexId) -> VertexId {
        self.leaf_of[v.index()]
    }

    /// The layer path containing the edge above `v`.
    #[inline]
    pub fn path_of(&self, v: VertexId) -> PathId {
        self.path_of[v.index()]
    }

    /// The path with the given id.
    pub fn path(&self, id: PathId) -> &LayerPath {
        &self.paths[id.0 as usize]
    }

    /// All layer paths.
    pub fn paths(&self) -> &[LayerPath] {
        &self.paths
    }

    /// Number of layers.
    pub fn num_layers(&self) -> u32 {
        self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{binary_tree, figure_tree, path_tree};

    #[test]
    fn figure_tree_layers_match_paper() {
        let (_, t) = figure_tree();
        let l = Layering::new(&t);
        // Legs: edges above 3, 4, 5, 7, 8 are layer 1.
        for v in [3u32, 4, 5, 7, 8] {
            assert_eq!(l.layer(VertexId(v)), 1, "edge above v{v}");
        }
        // Junction 6 has two layer-1 children -> edge above 6 is layer 2.
        assert_eq!(l.layer(VertexId(6)), 2);
        // Vertex 2 has children layers [1, 1, 2]: unique max -> layer 2,
        // continuing up through vertex 1.
        assert_eq!(l.layer(VertexId(2)), 2);
        assert_eq!(l.layer(VertexId(1)), 2);
        assert_eq!(l.num_layers(), 2);
    }

    #[test]
    fn figure_tree_paths_and_leaves() {
        let (_, t) = figure_tree();
        let l = Layering::new(&t);
        // The leg 3-4 is one layer-1 path with leaf 4.
        assert_eq!(l.path_of(VertexId(3)), l.path_of(VertexId(4)));
        assert_eq!(l.leaf_of(VertexId(3)), VertexId(4));
        assert_eq!(l.leaf_of(VertexId(4)), VertexId(4));
        // The layer-2 path is 6 -> 2 -> 1 with leaf 6 and top 0.
        assert_eq!(l.path_of(VertexId(6)), l.path_of(VertexId(1)));
        assert_eq!(l.leaf_of(VertexId(1)), VertexId(6));
        let p = l.path(l.path_of(VertexId(6)));
        assert_eq!(p.layer, 2);
        assert_eq!(p.edges, vec![VertexId(6), VertexId(2), VertexId(1)]);
        assert_eq!(p.top, VertexId(0));
    }

    #[test]
    fn path_tree_is_one_layer() {
        let (_, t) = path_tree(12);
        let l = Layering::new(&t);
        assert_eq!(l.num_layers(), 1);
        assert_eq!(l.paths().len(), 1);
        assert_eq!(l.leaf_of(VertexId(1)), VertexId(11));
    }

    #[test]
    fn binary_tree_has_log_layers() {
        // 63 vertices, 32 leaves: the edges above the root's children have
        // Strahler number levels - 1 = 5 (the root has no edge above it).
        let (_, t) = binary_tree(6);
        let l = Layering::new(&t);
        assert_eq!(l.num_layers(), 5);
        // Claim 4.7: at most log2(#leaves) + 1 layers.
        assert!(l.num_layers() <= 32f64.log2() as u32 + 1);
    }

    #[test]
    fn layers_are_monotone_up_root_paths() {
        let (_, t) = binary_tree(5);
        let l = Layering::new(&t);
        for v in t.tree_edge_children() {
            if let Some(p) = t.parent(v) {
                if p != t.root() {
                    assert!(l.layer(p) >= l.layer(v), "layer decreased from {v} to parent {p}");
                }
            }
        }
    }

    /// The paper defines layers by repeated contraction of
    /// leaf-to-junction paths; we compute them via Strahler numbers.
    /// This test implements the *literal contraction semantics* and
    /// checks equality on random trees.
    fn contraction_layers(tree: &RootedTree) -> Vec<u32> {
        let n = tree.n();
        let root = tree.root();
        let mut layer = vec![0u32; n];
        let mut removed = vec![false; n];
        let mut current = 0u32;
        loop {
            // Child counts in the current contracted tree.
            let mut child_count = vec![0usize; n];
            for v in tree.order().iter().copied() {
                if v != root && !removed[v.index()] {
                    child_count[tree.parent(v).expect("non-root").index()] += 1;
                }
            }
            let leaves: Vec<VertexId> = tree
                .order()
                .iter()
                .copied()
                .filter(|&v| v != root && !removed[v.index()] && child_count[v.index()] == 0)
                .collect();
            if leaves.is_empty() {
                break;
            }
            current += 1;
            let is_junction: Vec<bool> = (0..n).map(|v| child_count[v] > 1).collect();
            for leaf in leaves {
                // Walk from the leaf to its first junction ancestor (or
                // the root), marking the traversed edges.
                let mut cur = leaf;
                loop {
                    layer[cur.index()] = current;
                    removed[cur.index()] = true;
                    let p = tree.parent(cur).expect("non-root");
                    if p == root || is_junction[p.index()] {
                        break;
                    }
                    cur = p;
                }
            }
        }
        layer
    }

    #[test]
    fn strahler_matches_literal_contraction() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..12 {
            // Random tree: parent(v) drawn from 0..v.
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(5..60);
            let edges: Vec<(u32, u32, u64)> =
                (1..n as u32).map(|v| (rng.gen_range(0..v), v, 1)).collect();
            let g = decss_graphs::Graph::from_edges(n, edges).unwrap();
            let ids: Vec<decss_graphs::EdgeId> = g.edge_ids().collect();
            let tree = RootedTree::new(&g, VertexId(0), &ids);

            let fast = Layering::new(&tree);
            let literal = contraction_layers(&tree);
            for v in tree.tree_edge_children() {
                assert_eq!(
                    fast.layer(v),
                    literal[v.index()],
                    "seed {seed}: layer mismatch at edge above {v}"
                );
            }
        }
    }

    #[test]
    fn paths_partition_tree_edges() {
        let (_, t) = figure_tree();
        let l = Layering::new(&t);
        let total: usize = l.paths().iter().map(|p| p.edges.len()).sum();
        assert_eq!(total, t.num_tree_edges());
        // Edges within a path are consecutive child-parent pairs.
        for p in l.paths() {
            for w in p.edges.windows(2) {
                assert_eq!(t.parent(w[0]), Some(w[1]));
            }
            assert_eq!(*p.edges.first().unwrap(), p.leaf);
        }
    }
}
