//! The segment decomposition of the tree (Section 4.2.1, after
//! Ghaffari–Parter's FT-MST decomposition).
//!
//! The tree is broken into `O(√n)` edge-disjoint segments of diameter
//! `O(√n)`. Each segment `S` has a root `r_S` (an ancestor of the whole
//! segment), a unique descendant `d_S`, a **highway** — the tree path
//! `r_S → d_S` — and hanging subtrees attached to highway vertices. Only
//! `r_S` and `d_S` may be shared with other segments. The **skeleton
//! tree** has a vertex per `r_S`/`d_S` and an edge per highway.
//!
//! Construction: let `s = ⌈√n⌉` and `P = {v : |subtree(v)| ≥ s}`. `P` is
//! ancestor-closed, has at most `n/s ≤ s` leaves, and hence `O(√n)`
//! branching vertices. Decompose `P` into maximal paths between
//! *break vertices* (the root, leaves of `P`, and branching vertices of
//! `P`), chop each path into pieces of at most `s` edges — these pieces
//! are the highways — and hang every subtree that left `P` from the
//! piece in which its attachment vertex is a non-root vertex.

use crate::euler::EulerTour;
use crate::rooted::RootedTree;
use decss_graphs::VertexId;

/// Identifier of a segment (dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentId(pub u32);

/// One segment of the decomposition.
#[derive(Clone, Debug)]
pub struct Segment {
    /// `r_S`: the segment root, an ancestor of every vertex in the
    /// segment.
    pub root: VertexId,
    /// `d_S`: the unique descendant; `r_S == d_S` only for the degenerate
    /// single-segment decomposition of a tiny tree.
    pub descendant: VertexId,
    /// Highway edges (child endpoints), bottom-up: from `d_S` up to the
    /// child of `r_S`.
    pub highway: Vec<VertexId>,
    /// All tree edges of the segment (child endpoints), highway included.
    pub edges: Vec<VertexId>,
    /// Exact diameter of the segment's subtree (in hops).
    pub diameter: u32,
}

/// The segment decomposition of a rooted tree.
#[derive(Clone, Debug)]
pub struct SegmentDecomposition {
    segments: Vec<Segment>,
    /// Segment of the edge above `v`; `u32::MAX` for the root vertex.
    seg_of_edge: Vec<u32>,
    max_diameter: u32,
}

impl SegmentDecomposition {
    /// Computes the decomposition.
    ///
    /// # Panics
    ///
    /// Panics on a single-vertex tree.
    pub fn new(tree: &RootedTree, euler: &EulerTour) -> Self {
        let n = tree.n();
        assert!(n >= 2, "segment decomposition needs at least one tree edge");
        let s = (n as f64).sqrt().ceil() as u32;
        let in_p = |v: VertexId| euler.subtree_size(v) >= s;

        // P-children and break vertices.
        let root = tree.root();
        let mut p_children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in tree.order().iter().copied() {
            if v != root && in_p(v) {
                p_children[tree.parent(v).expect("non-root").index()].push(v);
            }
        }
        let is_break = |v: VertexId| v == root || p_children[v.index()].len() != 1;

        // Highways: walk each break-to-break chain, chopping into pieces
        // of at most `s` edges. Pieces are recorded top-down.
        struct Piece {
            root: VertexId,
            chain: Vec<VertexId>, // child endpoints, top-down
        }
        let mut pieces: Vec<Piece> = Vec::new();
        // `piece_above[v]` = piece containing the edge above v (P edges only).
        let mut piece_above: Vec<Option<usize>> = vec![None; n];
        for v in tree.order().iter().copied() {
            if !(in_p(v) && is_break(v)) {
                continue;
            }
            for &start in &p_children[v.index()] {
                // Chain of P vertices from `start` down to the next break.
                let mut chain = vec![start];
                let mut cur = start;
                while !is_break(cur) {
                    cur = p_children[cur.index()][0];
                    chain.push(cur);
                }
                // Chop into pieces of at most `s` edges.
                let mut top = v;
                for chunk in chain.chunks(s as usize) {
                    let idx = pieces.len();
                    for &x in chunk {
                        piece_above[x.index()] = Some(idx);
                    }
                    pieces.push(Piece { root: top, chain: chunk.to_vec() });
                    top = *chunk.last().expect("chunks are non-empty");
                }
            }
        }
        if pieces.is_empty() {
            // Degenerate: P = {root}. One segment holds the whole tree.
            pieces.push(Piece { root, chain: Vec::new() });
        }

        // Where do subtrees hanging off a P vertex go? To the piece in
        // which the vertex is *not* the piece root — i.e. the piece of
        // the edge above it — except the tree root, which hangs its
        // leftovers on its first piece.
        let hang_target = |x: VertexId| -> usize {
            match piece_above[x.index()] {
                Some(p) => p,
                None => {
                    debug_assert_eq!(x, root);
                    0
                }
            }
        };

        // Assign every tree edge to a segment.
        let mut seg_of_edge = vec![u32::MAX; n];
        for (idx, piece) in pieces.iter().enumerate() {
            for &x in &piece.chain {
                seg_of_edge[x.index()] = idx as u32;
            }
        }
        // Hanging subtrees: any non-P vertex whose parent is in P roots a
        // hanging subtree; all its edges go to the attachment's target.
        // Process in BFS order so parents are labelled first.
        for v in tree.order().iter().copied() {
            if v == root || in_p(v) {
                continue;
            }
            let p = tree.parent(v).expect("non-root");
            seg_of_edge[v.index()] = if in_p(p) {
                hang_target(p) as u32
            } else {
                seg_of_edge[p.index()]
            };
        }

        // Materialize segments.
        let mut segments: Vec<Segment> = pieces
            .iter()
            .map(|piece| {
                let descendant = piece.chain.last().copied().unwrap_or(piece.root);
                let mut highway = piece.chain.clone();
                highway.reverse(); // bottom-up
                Segment {
                    root: piece.root,
                    descendant,
                    highway,
                    edges: Vec::new(),
                    diameter: 0,
                }
            })
            .collect();
        for v in tree.order().iter().copied() {
            if v == root {
                continue;
            }
            let seg = seg_of_edge[v.index()];
            debug_assert_ne!(seg, u32::MAX, "edge above {v} unassigned");
            segments[seg as usize].edges.push(v);
        }
        let mut max_diameter = 0;
        for seg in &mut segments {
            seg.diameter = segment_diameter(tree, seg);
            max_diameter = max_diameter.max(seg.diameter);
        }
        SegmentDecomposition { segments, seg_of_edge, max_diameter }
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the decomposition is empty (never; kept for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segment of the tree edge above `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root (it has no edge above it).
    pub fn segment_of_edge(&self, v: VertexId) -> SegmentId {
        let s = self.seg_of_edge[v.index()];
        assert_ne!(s, u32::MAX, "the root has no edge above it");
        SegmentId(s)
    }

    /// The segment with the given id.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0 as usize]
    }

    /// Largest segment diameter (feeds the round-cost formulas).
    pub fn max_diameter(&self) -> u32 {
        self.max_diameter
    }

    /// The skeleton edges: one `(r_S, d_S)` pair per non-degenerate
    /// segment.
    pub fn skeleton_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.segments
            .iter()
            .filter(|s| s.root != s.descendant)
            .map(|s| (s.root, s.descendant))
    }

    /// The skeleton tree (Section 4.2.1): a vertex per distinct
    /// `r_S`/`d_S` and an edge per highway. Every vertex learns this
    /// whole structure in the distributed construction (Claim 4.3) — it
    /// has `O(√n)` vertices, so `O(√n)` words suffice.
    pub fn skeleton(&self) -> SkeletonTree {
        let mut vertices: Vec<VertexId> =
            self.segments.iter().flat_map(|s| [s.root, s.descendant]).collect();
        vertices.sort_unstable();
        vertices.dedup();
        let edges: Vec<(VertexId, VertexId, SegmentId)> = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.root != s.descendant)
            .map(|(i, s)| (s.root, s.descendant, SegmentId(i as u32)))
            .collect();
        SkeletonTree { vertices, edges }
    }
}

/// The virtual skeleton tree of a segment decomposition: `O(√n)`
/// vertices (the segment roots and descendants), one edge per highway.
#[derive(Clone, Debug)]
pub struct SkeletonTree {
    /// The distinct `r_S` / `d_S` vertices, sorted.
    pub vertices: Vec<VertexId>,
    /// `(r_S, d_S, segment)` per highway.
    pub edges: Vec<(VertexId, VertexId, SegmentId)>,
}

impl SkeletonTree {
    /// Whether the skeleton is a forest rooted at the tree root: every
    /// vertex except the roots appears as a descendant of exactly one
    /// edge. (It is a *tree* whenever the decomposition is
    /// non-degenerate.)
    pub fn is_consistent(&self) -> bool {
        let mut seen_as_descendant = std::collections::HashSet::new();
        for &(_, d, _) in &self.edges {
            if !seen_as_descendant.insert(d) {
                return false; // two highways share a descendant
            }
        }
        self.edges.len() < self.vertices.len().max(1)
    }
}

/// Exact diameter of a segment's subtree via double BFS over its edges.
fn segment_diameter(tree: &RootedTree, seg: &Segment) -> u32 {
    use std::collections::{HashMap, VecDeque};
    if seg.edges.is_empty() {
        return 0;
    }
    let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &v in &seg.edges {
        let p = tree.parent(v).expect("non-root");
        adj.entry(v).or_default().push(p);
        adj.entry(p).or_default().push(v);
    }
    let bfs = |start: VertexId| -> (VertexId, u32) {
        let mut dist: HashMap<VertexId, u32> = HashMap::from([(start, 0)]);
        let mut queue = VecDeque::from([start]);
        let (mut far, mut far_d) = (start, 0);
        while let Some(v) = queue.pop_front() {
            let d = dist[&v];
            if d > far_d {
                far = v;
                far_d = d;
            }
            for &w in adj.get(&v).map(|x| x.as_slice()).unwrap_or(&[]) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        (far, far_d)
    };
    let (far, _) = bfs(seg.root);
    bfs(far).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{binary_tree, figure_tree, path_tree};
    use decss_graphs::gen;

    fn check_invariants(tree: &RootedTree, euler: &EulerTour, decomp: &SegmentDecomposition) {
        let n = tree.n();
        let s = (n as f64).sqrt().ceil() as u32;
        // Edge-disjoint and complete.
        let total: usize = decomp.segments().iter().map(|x| x.edges.len()).sum();
        assert_eq!(total, tree.num_tree_edges(), "edges partitioned");
        // Count and diameter bounds (constants per the construction).
        assert!(
            decomp.len() as u32 <= 4 * s + 2,
            "too many segments: {} for n = {n}",
            decomp.len()
        );
        assert!(
            decomp.max_diameter() <= 4 * s + 2,
            "diameter {} too large for n = {n}",
            decomp.max_diameter()
        );
        for seg in decomp.segments() {
            // r_S is an ancestor of everything in the segment.
            for &v in &seg.edges {
                assert!(euler.is_ancestor(seg.root, v), "{v} not under {}", seg.root);
            }
            // The highway really is the path d_S -> r_S.
            if !seg.highway.is_empty() {
                assert_eq!(seg.highway[0], seg.descendant);
                let mut cur = seg.descendant;
                for &h in &seg.highway {
                    assert_eq!(h, cur);
                    cur = tree.parent(cur).expect("non-root");
                }
                assert_eq!(cur, seg.root);
            }
        }
        // Interior vertices are private: a vertex that is neither r_S nor
        // d_S of any segment appears in edges of exactly one segment.
        use std::collections::{HashMap, HashSet};
        let mut shared: HashSet<VertexId> = HashSet::new();
        for seg in decomp.segments() {
            shared.insert(seg.root);
            shared.insert(seg.descendant);
        }
        let mut seg_of_vertex: HashMap<VertexId, u32> = HashMap::new();
        for (i, seg) in decomp.segments().iter().enumerate() {
            for &v in &seg.edges {
                let p = tree.parent(v).expect("non-root");
                for x in [v, p] {
                    if shared.contains(&x) {
                        continue;
                    }
                    if let Some(&prev) = seg_of_vertex.get(&x) {
                        assert_eq!(prev, i as u32, "interior vertex {x} in two segments");
                    } else {
                        seg_of_vertex.insert(x, i as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn figure_tree_decomposition() {
        let (_, t) = figure_tree();
        let euler = EulerTour::new(&t);
        let d = SegmentDecomposition::new(&t, &euler);
        check_invariants(&t, &euler, &d);
    }

    #[test]
    fn path_tree_decomposition_has_sqrt_segments() {
        let (_, t) = path_tree(100);
        let euler = EulerTour::new(&t);
        let d = SegmentDecomposition::new(&t, &euler);
        check_invariants(&t, &euler, &d);
        // A path of 100 vertices with s = 10 should yield about 10
        // segments of about 10 edges each.
        assert!(d.len() >= 8 && d.len() <= 12, "{} segments", d.len());
    }

    #[test]
    fn binary_tree_decomposition() {
        let (_, t) = binary_tree(8); // 255 vertices
        let euler = EulerTour::new(&t);
        let d = SegmentDecomposition::new(&t, &euler);
        check_invariants(&t, &euler, &d);
        assert!(d.len() > 1);
    }

    #[test]
    fn random_trees_decompose_within_bounds() {
        for seed in 0..6 {
            let g = gen::gnp_two_ec(200, 0.05, 50, seed);
            let t = RootedTree::mst(&g);
            let euler = EulerTour::new(&t);
            let d = SegmentDecomposition::new(&t, &euler);
            check_invariants(&t, &euler, &d);
        }
    }

    #[test]
    fn tiny_tree_single_segment() {
        let (_, t) = path_tree(2);
        let euler = EulerTour::new(&t);
        let d = SegmentDecomposition::new(&t, &euler);
        assert_eq!(d.segments().iter().map(|s| s.edges.len()).sum::<usize>(), 1);
        check_invariants(&t, &euler, &d);
    }

    #[test]
    fn skeleton_tree_structure() {
        for seed in 0..4 {
            let g = gen::gnp_two_ec(150, 0.05, 40, seed);
            let t = RootedTree::mst(&g);
            let euler = EulerTour::new(&t);
            let d = SegmentDecomposition::new(&t, &euler);
            let skel = d.skeleton();
            assert!(skel.is_consistent(), "seed {seed}");
            // O(sqrt n) size.
            let s = (g.n() as f64).sqrt().ceil();
            assert!(skel.vertices.len() as f64 <= 8.0 * s + 4.0);
            // Every highway's endpoints appear among the vertices, and
            // r_S is a proper ancestor of d_S.
            for &(r, dsc, seg) in &skel.edges {
                assert!(skel.vertices.binary_search(&r).is_ok());
                assert!(skel.vertices.binary_search(&dsc).is_ok());
                assert!(euler.is_proper_ancestor(r, dsc));
                assert_eq!(d.segment(seg).root, r);
            }
        }
    }

    #[test]
    fn segment_of_edge_is_consistent() {
        let (_, t) = binary_tree(6);
        let euler = EulerTour::new(&t);
        let d = SegmentDecomposition::new(&t, &euler);
        for (i, seg) in d.segments().iter().enumerate() {
            for &v in &seg.edges {
                assert_eq!(d.segment_of_edge(v), SegmentId(i as u32));
            }
        }
        assert!(!d.is_empty());
        assert!(d.skeleton_edges().count() <= d.len());
    }
}
