//! Rooted spanning trees.
//!
//! A tree edge is identified throughout the workspace by its **child
//! endpoint**: the edge above vertex `v` is "tree edge `v`". This matches
//! the paper's convention `t = {v, p(v)}` and gives tree edges a dense
//! index space (every non-root vertex names exactly one tree edge).

use decss_graphs::{EdgeId, Graph, VertexId};

/// A spanning tree of a graph, rooted and oriented.
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
    /// Vertices in BFS order from the root (parents before children).
    order: Vec<VertexId>,
    /// Whether each graph edge is part of the tree.
    is_tree_edge: Vec<bool>,
}

impl RootedTree {
    /// Builds a rooted tree from `tree_edges`, which must form a spanning
    /// tree of `g`.
    ///
    /// # Panics
    ///
    /// Panics if the edges do not form a spanning tree.
    pub fn new(g: &Graph, root: VertexId, tree_edges: &[EdgeId]) -> Self {
        assert_eq!(
            tree_edges.len() + 1,
            g.n(),
            "a spanning tree of {} vertices needs {} edges, got {}",
            g.n(),
            g.n() - 1,
            tree_edges.len()
        );
        let n = g.n();
        let mut is_tree_edge = vec![false; g.m()];
        let mut adj: Vec<Vec<(EdgeId, VertexId)>> = vec![Vec::new(); n];
        for &id in tree_edges {
            assert!(!is_tree_edge[id.index()], "duplicate tree edge {id}");
            is_tree_edge[id.index()] = true;
            let e = g.edge(id);
            adj[e.u.index()].push((id, e.v));
            adj[e.v.index()].push((id, e.u));
        }
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        seen[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(e, w) in &adj[v.index()] {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    parent_edge[w.index()] = Some(e);
                    depth[w.index()] = depth[v.index()] + 1;
                    children[v.index()].push(w);
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(order.len(), n, "tree edges do not span the graph");
        RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
            order,
            is_tree_edge,
        }
    }

    /// Builds the rooted minimum spanning tree of `g` (Kruskal with edge
    /// id tie-breaking), rooted at vertex 0.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn mst(g: &Graph) -> Self {
        let tree = decss_graphs::algo::minimum_spanning_tree(g).expect("connected graph");
        RootedTree::new(g, VertexId(0), &tree)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// The graph edge connecting `v` to its parent.
    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Children of `v`.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// Vertices in BFS order (parents before children).
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// Whether a graph edge belongs to the tree.
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.is_tree_edge[e.index()]
    }

    /// Iterator over non-root vertices, i.e. over tree edges by their
    /// child endpoints.
    pub fn tree_edge_children(&self) -> impl Iterator<Item = VertexId> + '_ {
        let root = self.root;
        self.order.iter().copied().filter(move |&v| v != root)
    }

    /// Number of tree edges (`n − 1`).
    pub fn num_tree_edges(&self) -> usize {
        self.n() - 1
    }

    /// Whether `v` is a *junction*: it has more than one child
    /// (Section 3.2).
    pub fn is_junction(&self, v: VertexId) -> bool {
        self.children[v.index()].len() > 1
    }

    /// The vertices of the path from `v` up to (and including) `anc`.
    ///
    /// # Panics
    ///
    /// Panics if `anc` is not an ancestor of `v`.
    pub fn path_up(&self, v: VertexId, anc: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != anc {
            cur = self
                .parent(cur)
                .unwrap_or_else(|| panic!("{anc} is not an ancestor of {v}"));
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::figure_tree;
    use decss_graphs::gen;

    #[test]
    fn structure_of_figure_tree() {
        let (_, t) = figure_tree();
        assert_eq!(t.root(), VertexId(0));
        assert_eq!(t.parent(VertexId(4)), Some(VertexId(3)));
        assert_eq!(t.depth(VertexId(4)), 4);
        assert!(t.is_junction(VertexId(2)));
        assert!(!t.is_junction(VertexId(1)));
        assert_eq!(t.num_tree_edges(), 8);
        assert_eq!(t.tree_edge_children().count(), 8);
        assert_eq!(t.children(VertexId(2)).len(), 3);
    }

    #[test]
    fn bfs_order_is_topological() {
        let (_, t) = figure_tree();
        let mut seen = vec![false; t.n()];
        for &v in t.order() {
            if let Some(p) = t.parent(v) {
                assert!(seen[p.index()], "parent of {v} not seen before it");
            }
            seen[v.index()] = true;
        }
    }

    #[test]
    fn path_up_walks_to_ancestor() {
        let (_, t) = figure_tree();
        let p = t.path_up(VertexId(4), VertexId(1));
        assert_eq!(p, vec![VertexId(4), VertexId(3), VertexId(2), VertexId(1)]);
    }

    #[test]
    #[should_panic(expected = "not an ancestor")]
    fn path_up_rejects_non_ancestor() {
        let (_, t) = figure_tree();
        let _ = t.path_up(VertexId(4), VertexId(5));
    }

    #[test]
    fn mst_tree_spans() {
        let g = gen::gnp_two_ec(30, 0.1, 50, 1);
        let t = RootedTree::mst(&g);
        assert_eq!(t.n(), 30);
        assert_eq!(t.num_tree_edges(), 29);
        // Every non-root vertex has a parent edge that is a tree edge.
        for v in t.tree_edge_children() {
            let e = t.parent_edge(v).unwrap();
            assert!(t.is_tree_edge(e));
        }
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn wrong_edge_count_rejected() {
        let g = gen::cycle(4, 1, 0);
        let _ = RootedTree::new(&g, VertexId(0), &[EdgeId(0)]);
    }
}
