//! Heavy-light decomposition (Definition 5.3 in the paper).
//!
//! An edge `{v, u}` from `u` to its parent `v` is **heavy** if
//! `|T_u| > |T_v| / 2`, light otherwise; every leaf-to-root path crosses
//! at most `log2 n` light edges, and the heavy edges form vertex-disjoint
//! paths. The paper's Theorem 5.3 computes exactly this decomposition
//! distributedly, plus per-vertex lists of the light edges on the root
//! path — which is what makes label-only LCA queries possible (used by
//! the shortcut-based algorithm's subroutines, Lemma 5.5).

use crate::euler::EulerTour;
use crate::rooted::RootedTree;
use decss_graphs::VertexId;

/// A light edge on some root path, in the identifier format of
/// Definition 5.3: both endpoints and both root-path lengths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LightEdge {
    /// The parent-side endpoint.
    pub top: VertexId,
    /// The child-side endpoint.
    pub bottom: VertexId,
    /// Depth of `top`.
    pub top_depth: u32,
    /// Depth of `bottom` (= `top_depth + 1`).
    pub bottom_depth: u32,
}

/// Heavy-light decomposition of a rooted tree.
#[derive(Clone, Debug)]
pub struct HeavyLight {
    /// Whether the edge above `v` is heavy (`false` for the root).
    heavy_above: Vec<bool>,
    /// Top vertex of the heavy path containing `v`.
    head: Vec<VertexId>,
    /// Light edges on the path from `v` to the root, bottom-up.
    light_edges: Vec<Vec<LightEdge>>,
}

impl HeavyLight {
    /// Computes the decomposition in `O(n log n)` (dominated by the light
    /// edge lists, which have at most `log2 n` entries each).
    pub fn new(tree: &RootedTree, euler: &EulerTour) -> Self {
        let n = tree.n();
        let mut heavy_above = vec![false; n];
        for v in tree.order().iter().copied() {
            for &c in tree.children(v) {
                // Non-strict variant of the paper's definition (heavy iff
                // `|T_c| >= |T_v| / 2`), so that vertex chains form single
                // heavy paths. Both key properties survive: at most one
                // child can satisfy `2|T_c| >= |T_v|` (two would force
                // `2(|T_v| - 1) >= 2 |T_v|`), and a light edge still at
                // least halves the subtree size, so light depth <= log2 n.
                heavy_above[c.index()] = 2 * euler.subtree_size(c) >= euler.subtree_size(v);
            }
        }
        let mut head = vec![VertexId(0); n];
        let mut light_edges: Vec<Vec<LightEdge>> = vec![Vec::new(); n];
        for v in tree.order().iter().copied() {
            match tree.parent(v) {
                None => {
                    head[v.index()] = v;
                }
                Some(p) => {
                    if heavy_above[v.index()] {
                        head[v.index()] = head[p.index()];
                        light_edges[v.index()] = light_edges[p.index()].clone();
                    } else {
                        head[v.index()] = v;
                        let mut list = light_edges[p.index()].clone();
                        list.push(LightEdge {
                            top: p,
                            bottom: v,
                            top_depth: tree.depth(p),
                            bottom_depth: tree.depth(v),
                        });
                        light_edges[v.index()] = list;
                    }
                }
            }
        }
        HeavyLight { heavy_above, head, light_edges }
    }

    /// Whether the edge above `v` is heavy.
    pub fn is_heavy_above(&self, v: VertexId) -> bool {
        self.heavy_above[v.index()]
    }

    /// Top vertex of the heavy path containing `v`.
    pub fn head(&self, v: VertexId) -> VertexId {
        self.head[v.index()]
    }

    /// The light edges on the path from `v` to the root, root-most first.
    pub fn light_edges(&self, v: VertexId) -> &[LightEdge] {
        &self.light_edges[v.index()]
    }

    /// Number of light edges above `v` — the "light depth".
    pub fn light_depth(&self, v: VertexId) -> usize {
        self.light_edges[v.index()].len()
    }

    /// LCA of `u` and `v` computed *only* from the two light-edge lists
    /// and depths, the way adjacent vertices do it in Theorem 5.3.
    ///
    /// The LCA lies on the deepest heavy path shared by both root paths:
    /// compare the light-edge lists to find the first position where they
    /// diverge; the LCA is the shallower of the two vertices entering the
    /// diverging paths (or of `u`/`v` themselves if a list is exhausted).
    pub fn lca_from_lists(&self, u: VertexId, u_depth: u32, v: VertexId, v_depth: u32) -> VertexId {
        let lu = &self.light_edges[u.index()];
        let lv = &self.light_edges[v.index()];
        let mut shared = 0usize;
        while shared < lu.len() && shared < lv.len() && lu[shared] == lv[shared] {
            shared += 1;
        }
        // After the shared prefix, both vertices sit on the same heavy
        // path (the one below the last shared light edge, or the root's
        // path). The first divergent light edge's *top* endpoint is where
        // each root path leaves that heavy path; u itself plays that role
        // if its list is exhausted.
        let (cu, cu_depth) = if shared < lu.len() {
            (lu[shared].top, lu[shared].top_depth)
        } else {
            (u, u_depth)
        };
        let (cv, cv_depth) = if shared < lv.len() {
            (lv[shared].top, lv[shared].top_depth)
        } else {
            (v, v_depth)
        };
        if cu_depth <= cv_depth {
            cu
        } else {
            cv
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lca::LcaOracle;
    use crate::testutil::{binary_tree, figure_tree, path_tree};

    #[test]
    fn path_is_one_heavy_path() {
        let (_, t) = path_tree(10);
        let euler = EulerTour::new(&t);
        let hld = HeavyLight::new(&t, &euler);
        for v in 1..10u32 {
            assert!(hld.is_heavy_above(VertexId(v)), "edge above v{v}");
            assert_eq!(hld.head(VertexId(v)), VertexId(0));
        }
        assert_eq!(hld.light_depth(VertexId(9)), 0);
    }

    #[test]
    fn binary_tree_light_depth_is_logarithmic() {
        let (_, t) = binary_tree(7); // 127 vertices
        let euler = EulerTour::new(&t);
        let hld = HeavyLight::new(&t, &euler);
        for v in t.order().iter().copied() {
            assert!(
                hld.light_depth(v) <= 7,
                "light depth {} exceeds log2(n) at {v}",
                hld.light_depth(v)
            );
        }
    }

    #[test]
    fn every_vertex_has_at_most_one_heavy_child() {
        let (_, t) = figure_tree();
        let euler = EulerTour::new(&t);
        let hld = HeavyLight::new(&t, &euler);
        for v in t.order().iter().copied() {
            let heavy_children = t.children(v).iter().filter(|&&c| hld.is_heavy_above(c)).count();
            assert!(heavy_children <= 1, "vertex {v}");
        }
    }

    #[test]
    fn lca_from_lists_matches_oracle() {
        let (_, t) = binary_tree(5);
        let euler = EulerTour::new(&t);
        let hld = HeavyLight::new(&t, &euler);
        let oracle = LcaOracle::new(&t);
        let n = t.n() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (VertexId(a), VertexId(b));
                let got = hld.lca_from_lists(a, t.depth(a), b, t.depth(b));
                assert_eq!(got, oracle.lca(a, b), "lca({a}, {b})");
            }
        }
    }

    #[test]
    fn lca_from_lists_on_figure_tree() {
        let (_, t) = figure_tree();
        let euler = EulerTour::new(&t);
        let hld = HeavyLight::new(&t, &euler);
        let oracle = LcaOracle::new(&t);
        for a in 0..9u32 {
            for b in 0..9u32 {
                let (a, b) = (VertexId(a), VertexId(b));
                assert_eq!(
                    hld.lca_from_lists(a, t.depth(a), b, t.depth(b)),
                    oracle.lca(a, b),
                    "lca({a}, {b})"
                );
            }
        }
    }
}
