//! Pins the flat `CoverEngine` (strided lifting table, epoch-reset
//! Fenwick/segment-tree scratch) bit-identical to the preserved
//! `NaiveCoverEngine` — every method, including the f64 sweeps compared
//! bitwise, and across repeated invocations of one engine (the reuse
//! the rewrite exists for).
//!
//! Run under `--release` in CI; the 4096-vertex test is `#[ignore]`d
//! for the debug tier-1 run and executed with `--include-ignored`.

use decss_graphs::{gen, VertexId};
use decss_tree::aggregates::naive::NaiveCoverEngine;
use decss_tree::aggregates::{CoverArc, CoverEngine};
use decss_tree::{LcaOracle, RootedTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random parent-array tree on `n` vertices plus `3n` random valid arcs.
fn tree_and_arcs(n: usize, seed: u64) -> (RootedTree, Vec<CoverArc>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (rng.gen_range(0..v), v, 1)).collect();
    let g = decss_graphs::Graph::from_edges(n, edges).unwrap();
    let ids: Vec<decss_graphs::EdgeId> = g.edge_ids().collect();
    let tree = RootedTree::new(&g, VertexId(0), &ids);
    let lca = LcaOracle::new(&tree);
    let mut arcs = Vec::new();
    for _ in 0..3 * n {
        let a = VertexId(rng.gen_range(0..n as u32));
        let d = VertexId(rng.gen_range(0..n as u32));
        if lca.is_proper_ancestor(a, d) {
            arcs.push(CoverArc { anc: a, desc: d });
        }
    }
    (tree, arcs)
}

/// Every engine method, flat vs naive, bit-identical — invoked twice on
/// the flat engine so the second pass runs on dirty (epoch-stale)
/// scratch.
fn assert_engines_agree(tree: &RootedTree, arcs: &[CoverArc], seed: u64) {
    let lca = LcaOracle::new(tree);
    let flat = CoverEngine::new(tree, &lca, arcs.to_vec());
    let naive = NaiveCoverEngine::new(tree, &lca, arcs.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let m = arcs.len();
    let n = tree.n();
    let active: Vec<bool> = (0..m).map(|_| rng.gen_bool(0.7)).collect();
    let vals: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..10.0)).collect();
    let keys: Vec<u64> = (0..m).map(|_| rng.gen_range(0..10_000)).collect();
    let tvals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
    let tmask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let tkeys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();

    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for round in 0..2 {
        assert_eq!(
            bits(&flat.covering_sum(&active, &vals)),
            bits(&naive.covering_sum(&active, &vals)),
            "covering_sum (round {round})"
        );
        assert_eq!(
            flat.covering_count(&active),
            naive.covering_count(&active),
            "covering_count (round {round})"
        );
        assert_eq!(
            flat.covering_argmin(&active, &keys),
            naive.covering_argmin(&active, &keys),
            "covering_argmin (round {round})"
        );
        assert_eq!(
            bits(&flat.covered_sum(&tvals)),
            bits(&naive.covered_sum(&tvals)),
            "covered_sum (round {round})"
        );
        assert_eq!(
            flat.covered_count(&tmask),
            naive.covered_count(&tmask),
            "covered_count (round {round})"
        );
        assert_eq!(
            flat.covered_min(&tkeys),
            naive.covered_min(&tkeys),
            "covered_min (round {round})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flat_engine_matches_naive(n in 4usize..96, seed in 0u64..10_000) {
        let (tree, arcs) = tree_and_arcs(n, seed);
        assert_engines_agree(&tree, &arcs, seed ^ 0xABCD);
    }
}

/// MST-of-a-graph trees (non-random shape) at a few hundred vertices.
#[test]
fn flat_engine_matches_naive_on_mst_trees() {
    for (n, seed) in [(60usize, 8u64), (200, 9), (400, 10)] {
        let g = gen::gnp_two_ec(n, (4.0 / n as f64).min(0.3), 40, seed);
        let tree = RootedTree::mst(&g);
        let lca = LcaOracle::new(&tree);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arcs = Vec::new();
        while arcs.len() < 2 * n {
            let a = VertexId(rng.gen_range(0..n as u32));
            let d = VertexId(rng.gen_range(0..n as u32));
            if lca.is_proper_ancestor(a, d) {
                arcs.push(CoverArc { anc: a, desc: d });
            }
        }
        assert_engines_agree(&tree, &arcs, seed);
    }
}

/// The n=4096 instance the issue pins (release CI only).
#[test]
#[ignore = "large instance; run in release CI via --include-ignored"]
fn flat_engine_matches_naive_at_4096() {
    let (tree, arcs) = tree_and_arcs(4096, 21);
    assert_engines_agree(&tree, &arcs, 22);
}
