//! Property-based integration tests over random instances: the paper's
//! invariants must hold for *every* generated graph, not just the unit
//! tests' seeds.

use decss::core::{approximate_two_ecss, TapConfig, TwoEcssConfig, Variant};
use decss::graphs::{algo, gen, EdgeId, VertexId};
use decss::tree::{EulerTour, Layering, LcaOracle, RootedTree, SegmentDecomposition};
use proptest::prelude::*;

fn small_instance() -> impl Strategy<Value = decss::graphs::Graph> {
    (8usize..40, 0usize..30, 0u64..1_000)
        .prop_map(|(n, extra, seed)| gen::sparse_two_ec(n, extra, 32, seed))
}

fn branching_instance() -> impl Strategy<Value = decss::graphs::Graph> {
    (8usize..32, 0usize..16, 0u64..1_000)
        .prop_map(|(n, extra, seed)| gen::tree_plus_chords(n, extra, 32, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: the improved algorithm always outputs a
    /// spanning 2-edge-connected subgraph, and its dual-positive cover
    /// counts respect the <=2 bound.
    #[test]
    fn improved_output_is_always_valid(g in small_instance()) {
        let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).unwrap();
        prop_assert!(algo::two_edge_connected_in(&g, res.edges.iter().copied()));
        prop_assert!(res.stats.max_r_cover <= 2);
        prop_assert!(res.total_weight() >= res.mst_weight);
        prop_assert!(res.certified_ratio() >= 1.0 - 1e-9);
    }

    /// Same for the basic variant with its <=4 bound.
    #[test]
    fn basic_output_is_always_valid(g in branching_instance()) {
        let config = TwoEcssConfig {
            tap: TapConfig { epsilon: 0.5, variant: Variant::Basic },
        };
        let res = approximate_two_ecss(&g, &config).unwrap();
        prop_assert!(algo::two_edge_connected_in(&g, res.edges.iter().copied()));
        prop_assert!(res.stats.max_r_cover <= 4);
    }

    /// Layering invariants (Claims 4.7/4.8 premises): at most
    /// log2(#leaves)+1 layers, monotone along root paths, paths
    /// partition the tree edges.
    #[test]
    fn layering_invariants(g in branching_instance()) {
        let tree = RootedTree::mst(&g);
        let layering = Layering::new(&tree);
        let leaves = tree
            .tree_edge_children()
            .filter(|&v| tree.children(v).is_empty())
            .count()
            .max(1);
        prop_assert!(layering.num_layers() as f64 <= (leaves as f64).log2() + 1.0 + 1e-9);
        for v in tree.tree_edge_children() {
            if let Some(p) = tree.parent(v) {
                if p != tree.root() {
                    prop_assert!(layering.layer(p) >= layering.layer(v));
                }
            }
        }
        let total: usize = layering.paths().iter().map(|p| p.edges.len()).sum();
        prop_assert_eq!(total, tree.num_tree_edges());
    }

    /// Segment invariants: edges partitioned, O(sqrt n) segments of
    /// O(sqrt n) diameter, segment roots are ancestors.
    #[test]
    fn segment_invariants(g in small_instance()) {
        let tree = RootedTree::mst(&g);
        let euler = EulerTour::new(&tree);
        let segs = SegmentDecomposition::new(&tree, &euler);
        let s = (g.n() as f64).sqrt().ceil();
        prop_assert!(segs.len() as f64 <= 4.0 * s + 2.0);
        prop_assert!((segs.max_diameter() as f64) <= 4.0 * s + 2.0);
        let total: usize = segs.segments().iter().map(|x| x.edges.len()).sum();
        prop_assert_eq!(total, tree.num_tree_edges());
        for seg in segs.segments() {
            for &v in &seg.edges {
                prop_assert!(euler.is_ancestor(seg.root, v));
            }
        }
    }

    /// LCA oracle agrees with the naive parent-walk on arbitrary pairs.
    #[test]
    fn lca_oracle_correct(g in small_instance(), a in 0u32..40, b in 0u32..40) {
        let tree = RootedTree::mst(&g);
        let n = g.n() as u32;
        let (a, b) = (VertexId(a % n), VertexId(b % n));
        let oracle = LcaOracle::new(&tree);
        let naive = {
            let (mut x, mut y) = (a, b);
            while x != y {
                if tree.depth(x) >= tree.depth(y) {
                    x = tree.parent(x).unwrap();
                } else {
                    y = tree.parent(y).unwrap();
                }
            }
            x
        };
        prop_assert_eq!(oracle.lca(a, b), naive);
    }

    /// The MST oracle is optimal: no single edge swap improves it.
    #[test]
    fn mst_has_no_improving_swap(g in small_instance()) {
        let mst = algo::minimum_spanning_tree(&g).unwrap();
        let tree = RootedTree::new(&g, VertexId(0), &mst);
        let lca = LcaOracle::new(&tree);
        for (id, e) in g.edges() {
            if tree.is_tree_edge(id) {
                continue;
            }
            // Every tree edge on the cycle closed by `id` must be at most
            // as heavy (cut optimality).
            let w = lca.lca(e.u, e.v);
            for endpoint in [e.u, e.v] {
                let mut cur = endpoint;
                while cur != w {
                    let te = tree.parent_edge(cur).unwrap();
                    prop_assert!(
                        g.weight(te) <= g.weight(id),
                        "swap {te} for {id} improves the MST"
                    );
                    cur = tree.parent(cur).unwrap();
                }
            }
        }
    }

    /// Bridge finding agrees with brute force (delete an edge, check
    /// connectivity) on small graphs.
    #[test]
    fn bridges_match_brute_force(n in 4usize..16, extra in 0usize..8, seed in 0u64..500) {
        let g = gen::sparse_two_ec(n, extra, 8, seed);
        // Remove a random prefix of edges to create bridge-ful graphs.
        let keep: Vec<EdgeId> = g.edge_ids().skip(seed as usize % 3).collect();
        let keep_mask: Vec<bool> = g
            .edge_ids()
            .map(|e| keep.contains(&e))
            .collect();
        let fast = decss::graphs::algo::bridges_in_subgraph(&g, &keep_mask);
        for &e in &keep {
            let without = keep.iter().copied().filter(|&x| x != e);
            let comps_before = components(&g, keep.iter().copied());
            let comps_after = components(&g, without);
            let is_bridge = comps_after > comps_before;
            prop_assert_eq!(fast.contains(&e), is_bridge, "edge {}", e);
        }
    }
}

fn components(g: &decss::graphs::Graph, edges: impl IntoIterator<Item = EdgeId>) -> usize {
    let mut uf = decss::graphs::algo::UnionFind::new(g.n());
    for id in edges {
        let e = g.edge(id);
        uf.union(e.u.index(), e.v.index());
    }
    uf.components()
}
