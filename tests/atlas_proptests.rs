//! Property-based pins on the workload atlas: every family must emit a
//! 2-edge-connected graph for *every* `(n, seed)` the generator
//! accepts, the output must be a pure function of its parameters, and
//! the fingerprint must see through edge-id order (so cache keys and
//! shard routing agree on atlas instances no matter which path built
//! them).

use decss::graphs::{algo, gen, GraphBuilder};
use decss::service::graph_fingerprint;
use proptest::prelude::*;

fn any_family() -> impl Strategy<Value = gen::AtlasFamily> {
    (0usize..gen::ATLAS_ALL.len()).prop_map(|i| gen::ATLAS_ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every atlas family, at every accepted size and seed, is simple,
    /// connected, and bridgeless — the contract the solvers assume.
    #[test]
    fn atlas_families_are_always_two_edge_connected(
        family in any_family(),
        n in 64usize..200,
        seed in 0u64..1_000,
    ) {
        let g = family.instance(n, 32, seed);
        // RoadMesh rounds to a rows*cols grid and Adversarial to whole
        // gadgets, so the realised size may undershoot slightly — but
        // never collapse.
        prop_assert!(g.n() >= n.saturating_sub(n / 3), "{family:?} shrank too far: {}", g.n());
        prop_assert!(
            algo::is_two_edge_connected(&g),
            "{family:?} n={n} seed={seed} is not 2EC"
        );
    }

    /// Generators are pure functions of `(n, max_weight, seed)`: two
    /// calls fingerprint identically, and a different seed gives a
    /// different graph (collisions at these sizes would mean the seed
    /// is being ignored).
    #[test]
    fn atlas_families_are_seed_deterministic(
        family in any_family(),
        n in 64usize..160,
        seed in 0u64..1_000,
    ) {
        let a = graph_fingerprint(&family.instance(n, 32, seed));
        let b = graph_fingerprint(&family.instance(n, 32, seed));
        prop_assert_eq!(a, b, "{:?} is not deterministic", family);
        let c = graph_fingerprint(&family.instance(n, 32, seed.wrapping_add(1)));
        prop_assert_ne!(a, c, "{:?} ignores its seed", family);
    }

    /// The fingerprint that keys caches and shard routing is
    /// independent of edge insertion order: rebuilding an atlas
    /// instance with its edge list reversed fingerprints identically.
    #[test]
    fn atlas_fingerprints_ignore_edge_order(
        family in any_family(),
        n in 64usize..128,
        seed in 0u64..200,
    ) {
        let g = family.instance(n, 32, seed);
        let mut rebuilt = GraphBuilder::new(g.n());
        for id in (0..g.m()).rev() {
            let e = g.edge(decss::graphs::EdgeId(id as u32));
            rebuilt
                .add_edge(e.u.index() as u32, e.v.index() as u32, e.weight)
                .expect("edges re-add cleanly");
        }
        let rebuilt = rebuilt.build().expect("rebuild succeeds");
        prop_assert_eq!(
            graph_fingerprint(&g),
            graph_fingerprint(&rebuilt),
            "{:?} fingerprint depends on edge order", family
        );
    }

    /// The skip-sampled G(n, p) generator honours the same contract:
    /// always 2EC, always deterministic per seed.
    #[test]
    fn gnp_skip_is_two_ec_and_deterministic(
        n in 8usize..120,
        seed in 0u64..1_000,
    ) {
        let p = 2.0 / n as f64;
        let g = gen::gnp_two_ec_skip(n, p, 32, seed);
        prop_assert!(algo::is_two_edge_connected(&g));
        let again = gen::gnp_two_ec_skip(n, p, 32, seed);
        prop_assert_eq!(graph_fingerprint(&g), graph_fingerprint(&again));
    }
}

/// Exact fingerprint pins: these values must never drift, because
/// committed trace files and warm-state snapshots key on them. A failure
/// here means a generator's RNG stream changed — which silently
/// invalidates every committed fixture.
#[test]
fn atlas_fingerprints_are_pinned() {
    let pins: Vec<(String, u64)> = gen::ATLAS_ALL
        .iter()
        .map(|f| (f.label().to_string(), graph_fingerprint(&f.instance(96, 32, 7))))
        .collect();
    let rendered = pins
        .iter()
        .map(|(l, fp)| format!("{l}:{fp:#018x}"))
        .collect::<Vec<_>>()
        .join(", ");
    assert_eq!(
        rendered,
        "powerlaw:0x9bf5d77080d10bbc, roadmesh:0xba9719768e9270ad, \
         expander:0x687d7585be4ca7ec, nearclique:0xb795d3b1332b83cb, \
         adversarial:0xc50ac39554905438",
        "atlas RNG streams drifted — committed traces/fixtures are stale"
    );
    assert_eq!(
        graph_fingerprint(&gen::gnp_two_ec_skip(200, 0.03, 32, 7)),
        0xdf7a588291cc0f76,
        "gnp_two_ec_skip RNG stream drifted"
    );
}
