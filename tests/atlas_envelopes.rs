//! Per-family quality envelopes for the workload atlas: for every
//! family, at a pinned `(n, seed)`, the shortcut pipeline's measured
//! quality (worst-level `α`, `β`, `measured_sc = max α+β`) and the
//! certified approximation ratio must (a) respect the paper's
//! congestion/dilation bounds and (b) exactly match the committed
//! fixture `tests/fixtures/atlas_envelopes.json`.
//!
//! The adversarial family is the documented exception on purpose: it is
//! built from ring-joined Das Sarma-style gadgets precisely so the
//! shortcut pipeline pays near its `Θ(√n)` worst case, and the fixture
//! records that cost rather than bounding it with the friendly-family
//! envelope.
//!
//! Regenerate the fixture after an intentional generator or solver
//! change with `DECSS_REGEN_FIXTURES=1 cargo test --test
//! atlas_envelopes` — then commit the diff and explain it.

use decss::graphs::{algo, gen};
use decss::solver::{SolveRequest, SolverSession};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/atlas_envelopes.json");
const N: usize = 96;
const MAX_WEIGHT: u64 = 32;
const SEED: u64 = 7;

struct Envelope {
    family: &'static str,
    n: usize,
    m: usize,
    diameter: u32,
    alpha: u32,
    beta: u32,
    measured_sc: u64,
    weight: u64,
    ratio: f64,
}

fn measure() -> Vec<Envelope> {
    let mut session = SolverSession::new();
    gen::ATLAS_ALL
        .iter()
        .map(|family| {
            let g = family.instance(N, MAX_WEIGHT, SEED);
            let req = SolveRequest::new("shortcut").seed(SEED);
            let report = session.solve(&g, &req).expect("shortcut solve succeeds");
            assert!(report.valid, "{family:?}: output failed 2EC validation");
            let worst = report.worst_level().expect("shortcut pipeline reports levels");
            Envelope {
                family: family.label(),
                n: g.n(),
                m: g.m(),
                diameter: algo::diameter(&g),
                alpha: worst.alpha,
                beta: worst.beta,
                measured_sc: report.measured_sc.expect("shortcut pipeline measures sc"),
                weight: report.weight,
                ratio: report.certified_ratio(),
            }
        })
        .collect()
}

fn render(envelopes: &[Envelope]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in envelopes.iter().enumerate() {
        out.push_str(&format!(
            "{{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"diameter\": {}, \
             \"alpha\": {}, \"beta\": {}, \"measured_sc\": {}, \
             \"weight\": {}, \"ratio\": {:.4}}}{}\n",
            e.family,
            e.n,
            e.m,
            e.diameter,
            e.alpha,
            e.beta,
            e.measured_sc,
            e.weight,
            e.ratio,
            if i + 1 < envelopes.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// The analytic envelope: on every non-adversarial family the worst
/// level's shortcut cost must stay within the paper's
/// `O((√n + D) · log n)` budget, with a small measured constant; the
/// adversarial family may exceed the friendly constant but never the
/// asymptotic form itself.
#[test]
fn atlas_quality_respects_paper_bounds() {
    for e in measure() {
        let budget = (e.n as f64).sqrt() + e.diameter as f64;
        let log_n = (e.n as f64).log2();
        let friendly_cap = 4.0 * budget * log_n;
        let adversarial_cap = 16.0 * budget * log_n;
        let cap = if e.family == "adversarial" {
            adversarial_cap
        } else {
            friendly_cap
        };
        assert!(
            (e.measured_sc as f64) <= cap,
            "{}: measured_sc {} exceeds envelope {:.0} (n={}, D={})",
            e.family,
            e.measured_sc,
            cap,
            e.n,
            e.diameter
        );
        // α is the congestion side: each edge sits in O(log n) of the
        // augmented part subgraphs.
        assert!(
            (e.alpha as f64) <= 2.0 * log_n,
            "{}: alpha {} exceeds 2·log2(n) = {:.1}",
            e.family,
            e.alpha,
            2.0 * log_n
        );
        // The certified ratio is a sanity floor (>= 1 by construction)
        // and should not explode on any atlas family.
        assert!(
            e.ratio >= 1.0 - 1e-9 && e.ratio <= 4.0,
            "{}: ratio {}",
            e.family,
            e.ratio
        );
    }
}

/// The committed fixture is an exact pin: any drift in generators or
/// the shortcut pipeline shows up as a diff here before it silently
/// changes benchmark baselines or trace replays.
#[test]
fn atlas_envelopes_match_committed_fixture() {
    let fresh = render(&measure());
    if std::env::var("DECSS_REGEN_FIXTURES").is_ok() {
        std::fs::write(FIXTURE, &fresh).expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let committed = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with DECSS_REGEN_FIXTURES=1 once and commit it");
    assert_eq!(
        committed, fresh,
        "atlas envelopes drifted from the committed fixture; if the change is \
         intentional, regenerate with DECSS_REGEN_FIXTURES=1 and commit the diff"
    );
}
