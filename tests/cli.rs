//! End-to-end tests of the `decss` CLI binary.

use std::process::Command;

fn decss(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_decss"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tempfile(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("decss-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write");
    path
}

#[test]
fn gen_solve_verify_roundtrip() {
    let (graph_text, _, ok) = decss(&["gen", "--family", "grid", "--n", "25", "--seed", "3"]);
    assert!(ok, "gen failed");
    assert!(graph_text.starts_with("p 25 "));
    let path = tempfile("grid.graph", &graph_text);
    let path = path.to_str().expect("utf8 path");

    for algorithm in ["improved", "basic", "shortcut", "greedy", "unweighted"] {
        let (out, err, ok) = decss(&["solve", "--input", path, "--algorithm", algorithm]);
        assert!(ok, "solve {algorithm} failed: {err}");
        assert!(out.contains("valid-2ecss: true"), "{algorithm}: {out}");
        // Feed the reported edges back into verify.
        let edges_line = out
            .lines()
            .find(|l| l.starts_with("edges: "))
            .expect("edges line")
            .trim_start_matches("edges: ")
            .to_string();
        let (vout, verr, vok) = decss(&["verify", "--input", path, "--edges", &edges_line]);
        assert!(vok, "verify after {algorithm} failed: {verr}");
        assert!(vout.contains("valid-2ecss: true"));
    }
}

#[test]
fn verify_rejects_a_tree() {
    let (graph_text, _, _) = decss(&["gen", "--family", "cycle", "--n", "16"]);
    // "cycle" is not a family label; expect failure with a helpful message.
    assert!(graph_text.is_empty());
    let (_, err, ok) = decss(&["gen", "--family", "cycle", "--n", "16"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));

    // Generate a real instance, then verify a non-spanning subset.
    let (text, _, ok) = decss(&["gen", "--family", "sparse-random", "--n", "12", "--seed", "1"]);
    assert!(ok);
    let path = tempfile("sparse.graph", &text);
    let path = path.to_str().expect("utf8 path");
    let (_, err, ok) = decss(&["verify", "--input", path, "--edges", "0,1,2"]);
    assert!(!ok);
    assert!(err.contains("not a spanning 2-edge-connected subgraph"));
}

#[test]
fn scenario_sweeps_the_grid_and_emits_json() {
    let (out, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid,outerplanar",
        "--sizes",
        "36,64",
        "--seeds",
        "0,1",
        "--algorithms",
        "shortcut,improved",
    ]);
    assert!(ok, "scenario failed: {err}");
    // 2 families x 2 sizes x 2 seeds x 2 algorithms = 16 runs.
    assert_eq!(out.matches("\"algorithm\": \"shortcut\"").count(), 8, "{out}");
    assert_eq!(out.matches("\"algorithm\": \"improved\"").count(), 8);
    assert_eq!(out.matches("\"valid\": true").count(), 16);
    assert!(out.contains("\"measured_sc\":"));
    assert!(out.contains("\"certified_ratio\":"));
    assert!(out.contains("\"nproc\":"));
    // Progress goes to stderr, not into the JSON document.
    assert!(err.contains("scenario:"));
    assert!(!out.contains("scenario: grid"));

    // --out writes the same document to a file instead of stdout.
    let path = std::env::temp_dir().join("decss-cli-tests").join("scenario.json");
    std::fs::create_dir_all(path.parent().unwrap()).expect("temp dir");
    let path_str = path.to_str().expect("utf8 path");
    let (out, _, ok) =
        decss(&["scenario", "--families", "grid", "--sizes", "36", "--out", path_str]);
    assert!(ok);
    assert!(out.is_empty(), "JSON must not leak to stdout with --out");
    let written = std::fs::read_to_string(&path).expect("scenario file");
    assert!(written.contains("\"runs\": ["));

    // Unknown algorithms and families are rejected.
    let (_, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "16",
        "--algorithms",
        "exact",
    ]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
    let (_, err, ok) = decss(&["scenario", "--families", "mystery", "--sizes", "16"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));
}

#[test]
fn bad_usage_is_reported() {
    let (_, err, ok) = decss(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = decss(&["solve"]);
    assert!(!ok);
    assert!(err.contains("--input"));
    let (_, err, ok) = decss(&["solve", "--input", "/nonexistent/x.graph"]);
    assert!(!ok);
    assert!(err.contains("reading"));
}
