//! End-to-end tests of the `decss` CLI binary.

use std::process::Command;

fn decss(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_decss"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tempfile(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("decss-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write");
    path
}

#[test]
fn gen_solve_verify_roundtrip() {
    let (graph_text, _, ok) = decss(&["gen", "--family", "grid", "--n", "25", "--seed", "3"]);
    assert!(ok, "gen failed");
    assert!(graph_text.starts_with("p 25 "));
    let path = tempfile("grid.graph", &graph_text);
    let path = path.to_str().expect("utf8 path");

    for algorithm in ["improved", "basic", "shortcut", "greedy", "unweighted"] {
        let (out, err, ok) = decss(&["solve", "--input", path, "--algorithm", algorithm]);
        assert!(ok, "solve {algorithm} failed: {err}");
        assert!(out.contains("valid-2ecss: true"), "{algorithm}: {out}");
        // Feed the reported edges back into verify.
        let edges_line = out
            .lines()
            .find(|l| l.starts_with("edges: "))
            .expect("edges line")
            .trim_start_matches("edges: ")
            .to_string();
        let (vout, verr, vok) = decss(&["verify", "--input", path, "--edges", &edges_line]);
        assert!(vok, "verify after {algorithm} failed: {verr}");
        assert!(vout.contains("valid-2ecss: true"));
    }
}

#[test]
fn verify_rejects_a_tree() {
    let (graph_text, _, _) = decss(&["gen", "--family", "cycle", "--n", "16"]);
    // "cycle" is not a family label; expect failure with a helpful message.
    assert!(graph_text.is_empty());
    let (_, err, ok) = decss(&["gen", "--family", "cycle", "--n", "16"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));

    // Generate a real instance, then verify a non-spanning subset.
    let (text, _, ok) = decss(&["gen", "--family", "sparse-random", "--n", "12", "--seed", "1"]);
    assert!(ok);
    let path = tempfile("sparse.graph", &text);
    let path = path.to_str().expect("utf8 path");
    let (_, err, ok) = decss(&["verify", "--input", path, "--edges", "0,1,2"]);
    assert!(!ok);
    assert!(err.contains("not a spanning 2-edge-connected subgraph"));
}

#[test]
fn scenario_sweeps_the_grid_and_emits_json() {
    let (out, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid,outerplanar",
        "--sizes",
        "36,64",
        "--seeds",
        "0,1",
        "--algorithms",
        "shortcut,improved",
    ]);
    assert!(ok, "scenario failed: {err}");
    // 2 families x 2 sizes x 2 seeds x 2 algorithms = 16 runs.
    assert_eq!(out.matches("\"algorithm\": \"shortcut\"").count(), 8, "{out}");
    assert_eq!(out.matches("\"algorithm\": \"improved\"").count(), 8);
    assert_eq!(out.matches("\"valid\": true").count(), 16);
    assert!(out.contains("\"measured_sc\":"));
    assert!(out.contains("\"certified_ratio\":"));
    assert!(out.contains("\"nproc\":"));
    // Progress goes to stderr, not into the JSON document.
    assert!(err.contains("scenario:"));
    assert!(!out.contains("scenario: grid"));

    // --out writes the same document to a file instead of stdout.
    let path = std::env::temp_dir().join("decss-cli-tests").join("scenario.json");
    std::fs::create_dir_all(path.parent().unwrap()).expect("temp dir");
    let path_str = path.to_str().expect("utf8 path");
    let (out, _, ok) =
        decss(&["scenario", "--families", "grid", "--sizes", "36", "--out", path_str]);
    assert!(ok);
    assert!(out.is_empty(), "JSON must not leak to stdout with --out");
    let written = std::fs::read_to_string(&path).expect("scenario file");
    assert!(written.contains("\"runs\": ["));

    // Unknown algorithms and families are rejected (with the registry
    // vocabulary echoed back).
    let (_, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "16",
        "--algorithms",
        "mystery",
    ]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
    assert!(err.contains("shortcut"), "error should list the registry: {err}");
    let (_, err, ok) = decss(&["scenario", "--families", "mystery", "--sizes", "16"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));
}

#[test]
fn algorithms_lists_the_registry_and_every_name_solves() {
    let (out, _, ok) = decss(&["algorithms"]);
    assert!(ok);
    for name in ["improved", "basic", "shortcut", "greedy", "unweighted", "exact"] {
        assert!(out.contains(name), "algorithms output misses {name}: {out}");
    }

    let (names, _, ok) = decss(&["algorithms", "--names"]);
    assert!(ok);
    let names: Vec<&str> = names.lines().collect();
    assert!(names.len() >= 6, "{names:?}");

    // Every registered name solves a small instance end to end (m = 12
    // on a 3x3 grid, inside even the exact solver's edge cap).
    let (graph_text, _, ok) = decss(&["gen", "--family", "grid", "--n", "9", "--seed", "1"]);
    assert!(ok);
    let path = tempfile("tiny-grid.graph", &graph_text);
    let path = path.to_str().expect("utf8 path");
    for name in &names {
        let (out, err, ok) = decss(&["solve", "--input", path, "--algorithm", name]);
        assert!(ok, "solve {name} failed: {err}");
        assert!(out.contains("valid-2ecss: true"), "{name}: {out}");
        assert!(out.contains("certified-ratio:"), "{name}: {out}");
    }
}

#[test]
fn solve_knobs_json_trace_and_deadline() {
    let (graph_text, _, ok) = decss(&["gen", "--family", "grid", "--n", "36", "--seed", "5"]);
    assert!(ok);
    let path = tempfile("knobs-grid.graph", &graph_text);
    let path = path.to_str().expect("utf8 path");

    // --json emits the canonical SolveReport object.
    let (out, err, ok) = decss(&["solve", "--input", path, "--algorithm", "shortcut", "--json"]);
    assert!(ok, "{err}");
    assert!(out.starts_with('{') && out.trim_end().ends_with('}'), "{out}");
    assert!(out.contains("\"algorithm\": \"shortcut\""));
    assert!(out.contains("\"measured_sc\":"));
    assert!(out.contains("\"edge_ids\": ["));

    // --bandwidth rescales rounds; --fail-edges removes seeded edges;
    // --trace summary adds phase lines.
    let (out, err, ok) = decss(&[
        "solve",
        "--input",
        path,
        "--algorithm",
        "improved",
        "--bandwidth",
        "4",
        "--fail-edges",
        "2",
        "--seed",
        "3",
        "--trace",
        "summary",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("effective-rounds:"), "{out}");
    assert!(out.contains("failed-edges:"), "{out}");
    assert!(out.contains("trace: layers="), "{out}");
    assert!(out.contains("valid-2ecss: true"), "{out}");

    // The reported edges are in the *original* input's id space even
    // after failure injection — they round-trip through verify.
    let edges_line = out
        .lines()
        .find(|l| l.starts_with("edges: "))
        .expect("edges line")
        .trim_start_matches("edges: ")
        .to_string();
    let (vout, verr, vok) = decss(&["verify", "--input", path, "--edges", &edges_line]);
    assert!(vok, "verify after fail-edges solve failed: {verr}");
    assert!(vout.contains("valid-2ecss: true"));

    // An impossible deadline fails fast with the unified error.
    let (_, err, ok) = decss(&[
        "solve",
        "--input",
        path,
        "--algorithm",
        "improved",
        "--deadline-ms",
        "0",
    ]);
    assert!(!ok);
    assert!(err.contains("deadline"), "{err}");

    // The exact solver's size cap surfaces as a clean error on a big
    // instance (6x6 grid has 60 edges > 22).
    let (_, err, ok) = decss(&["solve", "--input", path, "--algorithm", "exact"]);
    assert!(!ok);
    assert!(err.contains("limited to"), "{err}");
}

#[test]
fn scenario_bandwidth_and_failure_knobs_reach_the_sweep_json() {
    let (out, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "49",
        "--seeds",
        "0,1",
        "--algorithms",
        "shortcut,greedy",
        "--bandwidth",
        "4",
        "--fail-edges",
        "2",
    ]);
    assert!(ok, "scenario failed: {err}");
    assert!(out.contains("\"bandwidth\": 4"), "{out}");
    assert!(out.contains("\"fail_edges\": 2"), "{out}");
    assert!(out.contains("\"effective_rounds\":"), "{out}");
    assert!(out.contains("\"failed_edges\": ["), "{out}");
    // greedy has no round model: rows still render, with no rounds field.
    assert_eq!(out.matches("\"algorithm\": \"greedy\"").count(), 2);
    assert_eq!(out.matches("\"valid\": true").count(), 4, "{out}");
    // Each seed removes its own edges deterministically.
    let (again, _, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "49",
        "--seeds",
        "0,1",
        "--algorithms",
        "shortcut,greedy",
        "--bandwidth",
        "4",
        "--fail-edges",
        "2",
    ]);
    assert!(ok);
    let strip_wall = |s: &str| {
        s.lines()
            .map(|l| l.split(", \"wall_ms\"").next().unwrap_or(l).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_wall(&out), strip_wall(&again), "sweeps must be deterministic");
}

#[test]
fn bad_usage_is_reported() {
    let (_, err, ok) = decss(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
    let (_, err, ok) = decss(&["solve"]);
    assert!(!ok);
    assert!(err.contains("--input"));
    let (_, err, ok) = decss(&["solve", "--input", "/nonexistent/x.graph"]);
    assert!(!ok);
    assert!(err.contains("reading"));
}

/// Like [`decss`] but returns the raw exit code — the batch exit
/// contract distinguishes partial failure (2) from infrastructure
/// errors (1).
fn decss_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_decss"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn serve_exit_codes_distinguish_partial_failure_from_infrastructure() {
    // A clean batch exits 0.
    let ok_path = tempfile(
        "jobs-exit-ok.json",
        "[\n{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16}\n]",
    );
    let (_, _, code) = decss_code(&["serve", "--jobs", ok_path.to_str().unwrap()]);
    assert_eq!(code, Some(0));

    // A batch with a failing job still reports every row, but exits 2.
    let mixed = concat!(
        "[\n",
        "{\"algorithm\": \"greedy\", \"family\": \"grid\", \"n\": 16},\n",
        "{\"algorithm\": \"no-such-algorithm\", \"family\": \"grid\", \"n\": 16}\n",
        "]"
    );
    let mixed_path = tempfile("jobs-exit-mixed.json", mixed);
    let mixed_path = mixed_path.to_str().unwrap();
    let (out, err, code) = decss_code(&["serve", "--jobs", mixed_path]);
    assert_eq!(code, Some(2), "partial failure is exit 2\nstderr: {err}");
    assert_eq!(
        out.matches("\"job\":").count(),
        2,
        "the document covers the whole batch: {out}"
    );
    assert!(out.contains("\"error\""), "{out}");
    assert!(err.contains("1 of 2 jobs failed"), "{err}");

    // --keep-going downgrades partial failure to success.
    let (out, _, code) = decss_code(&["serve", "--jobs", mixed_path, "--keep-going"]);
    assert_eq!(code, Some(0), "--keep-going accepts partial failure");
    assert!(out.contains("\"error\""), "{out}");

    // Infrastructure errors (unreadable input, bad flags) exit 1.
    let (_, err, code) = decss_code(&["serve", "--jobs", "/no/such/jobs.json"]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("reading"), "{err}");
    let (_, err, code) = decss_code(&["no-such-subcommand"]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn netstress_smoke_passes_the_contract() {
    let (out, err, code) =
        decss_code(&["netstress", "--seed", "11", "--ops", "12", "--threads", "3"]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("netstress: PASS"), "{out}");
}

#[test]
fn trace_gen_is_seed_deterministic_and_replayable() {
    let (text_a, _, code) = decss_code(&["trace", "gen", "--seed", "21", "--jobs", "8"]);
    assert_eq!(code, Some(0));
    let (text_b, _, _) = decss_code(&["trace", "gen", "--seed", "21", "--jobs", "8"]);
    assert_eq!(text_a, text_b, "same seed must emit byte-identical traces");
    let (text_c, _, _) = decss_code(&["trace", "gen", "--seed", "22", "--jobs", "8"]);
    assert_ne!(text_a, text_c, "different seeds must differ");
    assert!(
        text_a.lines().next().unwrap().contains("\"trace_version\""),
        "{text_a}"
    );
    assert_eq!(text_a.lines().filter(|l| l.contains("\"algorithm\"")).count(), 8);

    // Round-trip: the generated trace replays through `serve --trace`
    // with one report row per event and exit 0 even when the trace
    // deliberately includes cancellations or expiries.
    let path = tempfile("trace-roundtrip.jsonl", &text_a);
    let path = path.to_str().unwrap();
    let (out, err, code) = decss_code(&["serve", "--trace", path, "--workers", "2"]);
    assert_eq!(code, Some(0), "stderr: {err}");
    assert_eq!(out.matches("\"job\":").count(), 8, "{out}");
    assert!(out.contains("\"replay\""), "{out}");
    assert!(out.contains("\"tail_ms\""), "{out}");

    // `trace replay --input` runs the same engine.
    let (out2, _, code) = decss_code(&["trace", "replay", "--input", path, "--workers", "2"]);
    assert_eq!(code, Some(0));
    let strip = |doc: &str| {
        doc.lines()
            .filter(|l| l.contains("\"job\""))
            .map(|l| {
                let mut s = l.to_string();
                if let Some(i) = s.find("\"cache_hit\": ") {
                    let j = i + s[i..].find(", ").unwrap() + 2;
                    s.replace_range(i..j, "");
                }
                if let Some(i) = s.find(", \"wall_ms\": ") {
                    let j = i + s[i..].find('}').unwrap();
                    s.replace_range(i..j, "");
                }
                s
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip(&out),
        strip(&out2),
        "replay rows are deterministic across entry points"
    );
}

#[test]
fn trace_cmd_rejects_bad_invocations() {
    let (_, err, code) = decss_code(&["trace"]);
    assert_eq!(code, Some(1));
    assert!(err.contains("trace gen"), "{err}");
    let (_, err, code) = decss_code(&["trace", "replay"]);
    assert_eq!(code, Some(1));
    assert!(err.contains("--input"), "{err}");
    let (_, err, code) = decss_code(&["trace", "gen", "--arrival", "nope"]);
    assert_eq!(code, Some(1));
    assert!(err.contains("arrival"), "{err}");
}
