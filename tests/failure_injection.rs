//! Failure-injection tests: every verifier must *reject* corrupted
//! outputs. A test suite that only checks the happy path can pass with
//! a broken checker; these tests break things on purpose.

use decss::core::{approximate_two_ecss, TwoEcssConfig};
use decss::graphs::{algo, gen, EdgeId, GraphBuilder};
use decss::solver::{inject_failures, SolveRequest, SolverSession};

#[test]
fn edge_drops_are_judged_exactly_like_brute_force() {
    // Drop every single output edge in turn: the fast oracle's verdict
    // must match the brute-force definition every time (an MST edge *may*
    // be redundant once the augmentation richly covers it — the point is
    // that the verifier is never fooled either way), and at least one
    // drop must actually break the subgraph.
    let g = gen::sparse_two_ec(40, 30, 40, 5);
    let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    assert!(algo::two_edge_connected_in(&g, res.edges.iter().copied()));
    let mut saw_break = false;
    for drop in &res.edges {
        let rest: Vec<EdgeId> = res.edges.iter().copied().filter(|e| e != drop).collect();
        let fast = algo::two_edge_connected_in(&g, rest.iter().copied());
        let brute = algo::is_connected_subgraph(&g, rest.iter().copied())
            && rest.iter().all(|&d| {
                algo::is_connected_subgraph(&g, rest.iter().copied().filter(|&e| e != d))
            });
        assert_eq!(fast, brute, "verifier disagrees with brute force at {drop}");
        saw_break |= !fast;
    }
    assert!(saw_break, "no single drop ever broke the output");
}

#[test]
fn minimality_probe_augmentation_edges_are_load_bearing_somewhere() {
    // The reverse-delete phase prunes aggressively: on the instances
    // below, at least one augmentation edge must be essential (dropping
    // it breaks 2-edge-connectivity). (Not every edge need be essential
    // — the cover-bound guarantee allows slack — but if *none* were, the
    // phase would be vacuous.)
    let mut saw_essential = false;
    for seed in 0..5 {
        let g = gen::sparse_two_ec(30, 20, 40, seed);
        let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
        for drop in &res.augmentation {
            let rest: Vec<EdgeId> = res.edges.iter().copied().filter(|e| e != drop).collect();
            if !algo::two_edge_connected_in(&g, rest.iter().copied()) {
                saw_essential = true;
            }
        }
    }
    assert!(saw_essential, "no augmentation edge was ever essential");
}

#[test]
fn bridge_oracle_rejects_single_edge_corruptions() {
    // Take a valid 2-ECSS and swap one chosen edge for an arbitrary
    // unchosen one; the oracle must notice whenever the result is broken,
    // and the brute-force connectivity check must agree either way.
    let g = gen::grid(5, 5, 20, 8);
    let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    let unchosen: Vec<EdgeId> = g.edge_ids().filter(|e| !res.edges.contains(e)).collect();
    for (i, drop) in res.edges.iter().enumerate().step_by(3) {
        let replacement = unchosen[i % unchosen.len()];
        let mut mutated = res.edges.clone();
        mutated.retain(|e| e != drop);
        mutated.push(replacement);
        let fast = algo::two_edge_connected_in(&g, mutated.iter().copied());
        // Brute force: connected and every single deletion stays connected.
        let brute = algo::is_connected_subgraph(&g, mutated.iter().copied())
            && mutated.iter().all(|&d| {
                algo::is_connected_subgraph(&g, mutated.iter().copied().filter(|&e| e != d))
            });
        assert_eq!(fast, brute, "oracle disagrees with brute force after swap");
    }
}

#[test]
fn fail_edges_beyond_the_removable_supply_degrades_gracefully() {
    // Ask for vastly more failures than the graph can absorb: the drill
    // must remove only what keeps the graph 2-edge-connected, terminate,
    // and still leave a solvable instance — not panic or spin.
    let g = gen::grid(5, 5, 20, 8);
    let (damaged, removed) = inject_failures(&g, 10_000, 3);
    assert!(!removed.is_empty(), "a grid has redundant edges to shed");
    assert!(removed.len() < g.m(), "removal must stop at the 2EC floor");
    let damaged = damaged.expect("edges were removed, so a damaged graph exists");
    assert_eq!(damaged.m(), g.m() - removed.len());
    assert!(algo::is_two_edge_connected(&damaged));
    // What is left is exactly the floor: no surviving edge is removable.
    let mut alive = vec![true; g.m()];
    for e in &removed {
        alive[e.index()] = false;
    }
    for drop in g.edge_ids().filter(|e| alive[e.index()]) {
        assert!(
            !algo::two_edge_connected_in(
                &g,
                g.edge_ids().filter(|&e| alive[e.index()] && e != drop)
            ),
            "edge {drop} was removable but the drill stopped early"
        );
    }
    // And the request path survives the same overshoot end to end.
    let report = SolverSession::new()
        .solve(&g, &SolveRequest::new("improved").fail_edges(10_000).seed(3))
        .expect("overshooting fail_edges still solves");
    assert_eq!(report.failed_edges, removed);
    assert!(report.valid);
}

#[test]
fn graphs_with_no_removable_edge_lose_nothing() {
    // A bare cycle: every edge is load-bearing for 2-edge-connectivity.
    let cycle = gen::cycle(10, 9, 2);
    let (damaged, removed) = inject_failures(&cycle, 5, 0);
    assert!(removed.is_empty());
    assert!(
        damaged.is_none(),
        "no removals: the borrow short-circuit skips the rebuild"
    );

    // Bridge-heavy: two triangles joined by a bridge. The graph is not
    // even 2-edge-connected, so *no* removal can preserve the (already
    // absent) property — expect zero removed, not a panic or an
    // infinite retry loop, and the solvers then reject the instance on
    // their own terms.
    let bridged = {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1).unwrap();
        }
        b.add_edge(2, 3, 1).unwrap(); // the bridge
        b.build().unwrap()
    };
    assert!(!algo::is_two_edge_connected(&bridged));
    let (damaged, removed) = inject_failures(&bridged, 3, 1);
    assert!(removed.is_empty(), "nothing is removable on a bridged graph");
    assert!(damaged.is_none(), "zero removable edges must not clone the graph");
    let err = SolverSession::new()
        .solve(&bridged, &SolveRequest::new("improved").fail_edges(3))
        .unwrap_err();
    assert_eq!(err, decss::solver::SolveError::NotTwoEdgeConnected);
}

#[test]
fn failure_injection_reaches_the_centralized_baselines() {
    // The drill is a session feature, not a per-solver one: the exact
    // and cheapest-cover baselines must see the damaged graph and
    // report edges in the *original* id space like every other solver.
    let g = gen::grid(3, 3, 16, 5); // 12 edges: inside the exact cap
    let (_, removed) = inject_failures(&g, 2, 7);
    assert_eq!(removed.len(), 2);
    let mut session = SolverSession::new();
    for name in ["exact", "cheapest-cover"] {
        let report = session
            .solve(&g, &SolveRequest::new(name).fail_edges(2).seed(7))
            .unwrap_or_else(|e| panic!("{name} with fail_edges: {e}"));
        assert_eq!(report.failed_edges, removed, "{name}");
        assert_eq!(report.m, g.m() - 2, "{name}");
        assert!(report.valid, "{name}");
        assert!(
            report.edges.iter().all(|e| !removed.contains(e)),
            "{name} chose a failed edge"
        );
        assert!(
            algo::two_edge_connected_in(&g, report.edges.iter().copied()),
            "{name}'s choice must round-trip against the original graph"
        );
    }
    // The exact baseline on the damaged graph is still exact: no valid
    // 2-ECSS of the damaged graph can be lighter.
    let exact = session
        .solve(&g, &SolveRequest::new("exact").fail_edges(2).seed(7))
        .unwrap();
    let greedy = session
        .solve(&g, &SolveRequest::new("cheapest-cover").fail_edges(2).seed(7))
        .unwrap();
    assert!(exact.weight <= greedy.weight);
}

#[test]
fn verifiers_reject_truncated_covers() {
    use decss::core::verify;
    use decss::core::VirtualGraph;
    use decss::tree::{LcaOracle, RootedTree};
    let g = gen::sparse_two_ec(30, 24, 20, 1);
    let tree = RootedTree::mst(&g);
    let lca = LcaOracle::new(&tree);
    let vg = VirtualGraph::new(&g, &tree, &lca);
    let engine = vg.engine(&tree, &lca);
    let full = vec![true; vg.len()];
    assert!(verify::covers_all_tree_edges(&tree, &engine, &full));
    // Kill the covers of one specific tree edge: find a tree edge and
    // deactivate everything covering it.
    let victim = tree.tree_edge_children().next().expect("non-trivial tree");
    let mut truncated = full.clone();
    for i in 0..vg.len() {
        if engine.covers(i, victim) {
            truncated[i] = false;
        }
    }
    assert!(!verify::covers_all_tree_edges(&tree, &engine, &truncated));
}
