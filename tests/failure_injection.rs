//! Failure-injection tests: every verifier must *reject* corrupted
//! outputs. A test suite that only checks the happy path can pass with
//! a broken checker; these tests break things on purpose.

use decss::core::{approximate_two_ecss, TwoEcssConfig};
use decss::graphs::{algo, gen, EdgeId};

#[test]
fn edge_drops_are_judged_exactly_like_brute_force() {
    // Drop every single output edge in turn: the fast oracle's verdict
    // must match the brute-force definition every time (an MST edge *may*
    // be redundant once the augmentation richly covers it — the point is
    // that the verifier is never fooled either way), and at least one
    // drop must actually break the subgraph.
    let g = gen::sparse_two_ec(40, 30, 40, 5);
    let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    assert!(algo::two_edge_connected_in(&g, res.edges.iter().copied()));
    let mut saw_break = false;
    for drop in &res.edges {
        let rest: Vec<EdgeId> = res.edges.iter().copied().filter(|e| e != drop).collect();
        let fast = algo::two_edge_connected_in(&g, rest.iter().copied());
        let brute = algo::is_connected_subgraph(&g, rest.iter().copied())
            && rest.iter().all(|&d| {
                algo::is_connected_subgraph(&g, rest.iter().copied().filter(|&e| e != d))
            });
        assert_eq!(fast, brute, "verifier disagrees with brute force at {drop}");
        saw_break |= !fast;
    }
    assert!(saw_break, "no single drop ever broke the output");
}

#[test]
fn minimality_probe_augmentation_edges_are_load_bearing_somewhere() {
    // The reverse-delete phase prunes aggressively: on the instances
    // below, at least one augmentation edge must be essential (dropping
    // it breaks 2-edge-connectivity). (Not every edge need be essential
    // — the cover-bound guarantee allows slack — but if *none* were, the
    // phase would be vacuous.)
    let mut saw_essential = false;
    for seed in 0..5 {
        let g = gen::sparse_two_ec(30, 20, 40, seed);
        let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
        for drop in &res.augmentation {
            let rest: Vec<EdgeId> = res.edges.iter().copied().filter(|e| e != drop).collect();
            if !algo::two_edge_connected_in(&g, rest.iter().copied()) {
                saw_essential = true;
            }
        }
    }
    assert!(saw_essential, "no augmentation edge was ever essential");
}

#[test]
fn bridge_oracle_rejects_single_edge_corruptions() {
    // Take a valid 2-ECSS and swap one chosen edge for an arbitrary
    // unchosen one; the oracle must notice whenever the result is broken,
    // and the brute-force connectivity check must agree either way.
    let g = gen::grid(5, 5, 20, 8);
    let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    let unchosen: Vec<EdgeId> = g.edge_ids().filter(|e| !res.edges.contains(e)).collect();
    for (i, drop) in res.edges.iter().enumerate().step_by(3) {
        let replacement = unchosen[i % unchosen.len()];
        let mut mutated = res.edges.clone();
        mutated.retain(|e| e != drop);
        mutated.push(replacement);
        let fast = algo::two_edge_connected_in(&g, mutated.iter().copied());
        // Brute force: connected and every single deletion stays connected.
        let brute = algo::is_connected_subgraph(&g, mutated.iter().copied())
            && mutated.iter().all(|&d| {
                algo::is_connected_subgraph(&g, mutated.iter().copied().filter(|&e| e != d))
            });
        assert_eq!(fast, brute, "oracle disagrees with brute force after swap");
    }
}

#[test]
fn verifiers_reject_truncated_covers() {
    use decss::core::verify;
    use decss::core::VirtualGraph;
    use decss::tree::{LcaOracle, RootedTree};
    let g = gen::sparse_two_ec(30, 24, 20, 1);
    let tree = RootedTree::mst(&g);
    let lca = LcaOracle::new(&tree);
    let vg = VirtualGraph::new(&g, &tree, &lca);
    let engine = vg.engine(&tree, &lca);
    let full = vec![true; vg.len()];
    assert!(verify::covers_all_tree_edges(&tree, &engine, &full));
    // Kill the covers of one specific tree edge: find a tree edge and
    // deactivate everything covering it.
    let victim = tree.tree_edge_children().next().expect("non-trivial tree");
    let mut truncated = full.clone();
    for i in 0..vg.len() {
        if engine.covers(i, victim) {
            truncated[i] = false;
        }
    }
    assert!(!verify::covers_all_tree_edges(&tree, &engine, &truncated));
}
