//! Ledger-vs-simulator calibration (the contract behind DESIGN.md §3):
//! the round formulas charged by the logical pipeline must track genuine
//! message-level executions on the same instances.

use decss::congest::ledger::CostParams;
use decss::congest::protocols::{bfs, boruvka, broadcast, convergecast, pipeline};
use decss::graphs::{algo, gen, VertexId};
use decss::tree::{EulerTour, RootedTree, SegmentDecomposition};

fn params_for(g: &decss::graphs::Graph) -> (CostParams, RootedTree) {
    let tree = RootedTree::mst(g);
    let euler = EulerTour::new(&tree);
    let segs = SegmentDecomposition::new(&tree, &euler);
    let p = CostParams {
        n: g.n(),
        bfs_depth: algo::bfs_tree(g, VertexId(0)).depth(),
        num_segments: segs.len(),
        max_segment_diameter: segs.max_diameter(),
    };
    (p, tree)
}

#[test]
fn bfs_simulation_within_ledger_budget() {
    for seed in 0..4 {
        let g = gen::gnp_two_ec(60, 0.06, 20, seed);
        let (p, _) = params_for(&g);
        let (tree, report) = bfs::distributed_bfs(&g, VertexId(0));
        assert!(tree.spans_all());
        // The ledger charges 2*depth per broadcast; a BFS wave needs
        // depth + O(1) rounds.
        assert!(
            report.rounds <= p.broadcast() + 2,
            "seed {seed}: BFS took {} rounds vs budget {}",
            report.rounds,
            p.broadcast()
        );
    }
}

#[test]
fn tree_aggregation_within_ledger_budget() {
    let g = gen::grid(7, 7, 20, 1);
    let (p, tree) = params_for(&g);
    let mst_edges: Vec<_> = g.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect();
    let overlay = broadcast::TreeOverlay::from_edges(&g, VertexId(0), &mst_edges);
    let (_, bc) = broadcast::broadcast(&g, &overlay, 7);
    let values = vec![1u64; g.n()];
    let (total, cc) = convergecast::convergecast(&g, &overlay, &values, convergecast::Agg::Sum);
    assert_eq!(total, g.n() as u64);
    // One broadcast + one convergecast over the MST is at most the
    // aggregate budget (which also includes segment scans + pipelining).
    assert!(bc.rounds + cc.rounds <= p.aggregate() + 4);
}

#[test]
fn per_segment_pipelining_within_budget() {
    let g = gen::gnp_two_ec(100, 0.04, 20, 2);
    let (p, tree) = params_for(&g);
    let euler = EulerTour::new(&tree);
    let segs = SegmentDecomposition::new(&tree, &euler);
    // The ledger's per-segment-broadcast formula (2*bfs_depth + #segments)
    // models pipelining over the *BFS tree*, as in Claim 4.4 — the MST can
    // be arbitrarily deeper, so it is not a valid overlay for this budget.
    let bfs_edges: Vec<_> = algo::bfs_tree(&g, VertexId(0)).tree_edges().collect();
    let overlay = broadcast::TreeOverlay::from_edges(&g, VertexId(0), &bfs_edges);
    // One item per segment, emitted at each segment's descendant — the
    // Claim 4.4 pattern.
    let mut items: Vec<Vec<u64>> = vec![Vec::new(); g.n()];
    for (i, seg) in segs.segments().iter().enumerate() {
        items[seg.descendant.index()].push(i as u64);
    }
    let (collected, report) = pipeline::collect_items(&g, &overlay, &items);
    assert_eq!(collected.len(), segs.len());
    assert!(
        report.rounds <= p.per_segment_broadcast() + 4,
        "pipeline took {} vs budget {}",
        report.rounds,
        p.per_segment_broadcast()
    );
}

#[test]
fn parallel_segment_scans_within_budget() {
    // The message-level per-segment convergecast over the *real* segment
    // decomposition must finish within the ledger's segment-scan budget
    // (max segment diameter plus constant) and agree with naive sums.
    use decss::congest::protocols::convergecast::Agg;
    use decss::congest::protocols::segment_scan::segment_convergecast;
    for seed in 0..3 {
        let g = gen::gnp_two_ec(120, 0.04, 30, seed);
        let tree = RootedTree::mst(&g);
        let euler = EulerTour::new(&tree);
        let segs = SegmentDecomposition::new(&tree, &euler);
        let n = g.n();
        let parent: Vec<Option<VertexId>> =
            (0..n).map(|v| tree.parent(VertexId(v as u32))).collect();
        let parent_edge = (0..n)
            .map(|v| tree.parent_edge(VertexId(v as u32)))
            .collect::<Vec<_>>();
        let seg_of: Vec<u32> = (0..n)
            .map(|v| {
                let v = VertexId(v as u32);
                if tree.parent(v).is_none() {
                    u32::MAX
                } else {
                    segs.segment_of_edge(v).0
                }
            })
            .collect();
        let values: Vec<u64> = (0..n as u64).map(|i| i % 23).collect();
        let (results, report) =
            segment_convergecast(&g, &parent, &parent_edge, &seg_of, &values, Agg::Sum);
        // Agreement with naive per-segment sums.
        for (i, seg) in segs.segments().iter().enumerate() {
            let expect: u64 = seg.edges.iter().map(|v| values[v.index()]).sum();
            assert_eq!(results.get(&(i as u32)).copied().unwrap_or(0), expect, "seed {seed}");
        }
        // Rounds within the ledger's segment-scan budget.
        assert!(
            report.rounds <= segs.max_diameter() as u64 + 3,
            "seed {seed}: {} rounds vs max segment diameter {}",
            report.rounds,
            segs.max_diameter()
        );
        // And far below the tree height when the tree is stringy.
        let height = g.vertices().map(|v| tree.depth(v)).max().unwrap() as u64;
        assert!(report.rounds <= height.max(segs.max_diameter() as u64) + 3);
    }
}

#[test]
fn boruvka_agrees_with_the_logical_mst() {
    for seed in 0..3 {
        let g = gen::gnp_two_ec(24, 0.15, 100_000, seed);
        let (dist, report) = boruvka::distributed_mst(&g);
        let oracle = algo::minimum_spanning_tree(&g).unwrap();
        assert_eq!(dist, oracle, "seed {seed}");
        assert!(report.rounds > 0);
        // Bandwidth discipline held throughout.
        assert!(report.max_edge_load <= decss::congest::DEFAULT_BANDWIDTH as u64);
    }
}
