//! Golden-schema tests for the CLI's JSON documents (`decss scenario`
//! and `decss serve`): the emitted field sets are a public contract —
//! sweep post-processing, dashboards, and the bench gate all scan these
//! documents with the workspace's line-oriented JSON dialect
//! (`decss::solver::json`) — so any drift must break *here*, loudly,
//! instead of silently in a consumer.
//!
//! Values are checked through the same dialect (`string_field` /
//! `number_field`) the real consumers use; `wall_ms` — the one
//! nondeterministic field — is asserted present, then stripped for the
//! cross-run and cross-worker-count determinism comparisons.

use decss::solver::json::{number_field, string_field};
use std::process::Command;

fn decss(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_decss"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Every JSON key on `line`, in order of appearance (duplicates kept:
/// a schema that repeats a key is itself a bug worth catching).
fn keys_of(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        match tail.find('"') {
            Some(end) if tail[end + 1..].starts_with(':') => {
                keys.push(tail[..end].to_string());
                rest = &tail[end + 1..];
            }
            Some(end) => rest = &tail[end + 1..],
            None => break,
        }
    }
    keys
}

fn strip_wall_ms(doc: &str) -> String {
    doc.lines()
        .map(|l| l.split(", \"wall_ms\"").next().unwrap_or(l).to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn scenario_document_schema_is_pinned() {
    let (out, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "36",
        "--seeds",
        "0",
        "--algorithms",
        "shortcut,improved,greedy",
    ]);
    assert!(ok, "scenario failed: {err}");

    // Header: one key per line inside the "scenario" object.
    let header: Vec<String> = out
        .lines()
        .skip_while(|l| !l.contains("\"scenario\""))
        .skip(1)
        .take_while(|l| !l.trim_start().starts_with('}'))
        .flat_map(keys_of)
        .collect();
    assert_eq!(
        header,
        [
            "families",
            "sizes",
            "seeds",
            "algorithms",
            "max_weight",
            "epsilon",
            "bandwidth",
            "fail_edges",
            "nproc",
            "workers",
            "shards",
            "pool"
        ],
        "scenario header drifted"
    );

    // Rows: the exact per-algorithm field sets, in emission order.
    let rows: Vec<&str> = out.lines().filter(|l| l.contains("\"family\"")).collect();
    assert_eq!(rows.len(), 3);
    let common_prefix = [
        "family",
        "requested_n",
        "seed",
        "algorithm",
        "n",
        "m",
        "edges",
        "weight",
        "lower_bound",
        "certified_ratio",
        "valid",
    ];
    let expect = |row: &str, tail: &[&str]| {
        let mut want: Vec<String> = common_prefix.iter().map(|s| s.to_string()).collect();
        want.extend(tail.iter().map(|s| s.to_string()));
        assert_eq!(keys_of(row), want, "row schema drifted: {row}");
    };
    expect(
        rows[0],
        &[
            "rounds",
            "measured_sc",
            "alpha",
            "beta",
            "pass_cost",
            "fallbacks",
            "wall_ms",
        ],
    );
    expect(rows[1], &["rounds", "guarantee", "wall_ms"]);
    expect(rows[2], &["wall_ms"]); // greedy: centralized, no round model

    // The dialect the consumers scan with reads the values back.
    assert_eq!(string_field(rows[0], "algorithm").as_deref(), Some("shortcut"));
    assert_eq!(number_field(rows[0], "requested_n"), Some(36.0));
    assert!(number_field(rows[0], "weight").is_some());
    assert!(number_field(rows[0], "wall_ms").is_some(), "wall_ms must be emitted");

    // Determinism across worker counts: the sweep through 3 workers is
    // byte-identical modulo wall_ms and the header's own workers field.
    let (multi, err, ok) = decss(&[
        "scenario",
        "--families",
        "grid",
        "--sizes",
        "36",
        "--seeds",
        "0",
        "--algorithms",
        "shortcut,improved,greedy",
        "--workers",
        "3",
    ]);
    assert!(ok, "{err}");
    let body = |doc: &str| {
        strip_wall_ms(doc)
            .lines()
            .filter(|l| !l.contains("\"workers\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&out), body(&multi), "worker count leaked into the rows");
}

#[test]
fn serve_document_schema_is_pinned() {
    let dir = std::env::temp_dir().join("decss-golden-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jobs_path = dir.join("jobs.json");
    std::fs::write(
        &jobs_path,
        concat!(
            "[\n",
            "  {\"family\": \"grid\", \"n\": 36, \"seed\": 1, \"algorithm\": \"shortcut\"},\n",
            "  {\"family\": \"grid\", \"n\": 36, \"seed\": 1, \"algorithm\": \"shortcut\"},\n",
            "  {\"family\": \"grid\", \"n\": 36, \"seed\": 1, \"algorithm\": \"improved\"}\n",
            "]\n"
        ),
    )
    .expect("write jobs file");
    let (out, err, ok) = decss(&[
        "serve",
        "--jobs",
        jobs_path.to_str().expect("utf8 path"),
        "--workers",
        "2",
        "--cache-cap",
        "8",
    ]);
    assert!(ok, "serve failed: {err}");

    // The stats header: service shape plus the latency histogram shape,
    // one object per algorithm (order nondeterministic under 2 workers,
    // so the histogram tail is asserted as a repeated group).
    let service_line = out
        .lines()
        .find(|l| l.contains("\"service\""))
        .expect("service header line");
    let keys = keys_of(service_line);
    let histogram_group = ["algorithm", "count", "mean_ms", "max_ms", "histogram"];
    let mut want: Vec<String> = [
        "service",
        "workers",
        "queue_capacity",
        "queue_depth",
        "cache_capacity",
        "cache_entries",
        "cache_bytes",
        "submitted",
        "completed",
        "failed",
        "cache_hits",
        "cache_misses",
        "hit_rate",
        "latency",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for _ in 0..2 {
        // two algorithms ran → two histogram objects
        want.extend(histogram_group.iter().map(|s| s.to_string()));
    }
    // Host shape trailer: detected cores and the per-worker pool cap.
    want.extend(["nproc", "pool_cap"].map(String::from));
    assert_eq!(keys, want, "service stats schema drifted: {service_line}");
    assert_eq!(number_field(service_line, "submitted"), Some(3.0));
    assert_eq!(number_field(service_line, "completed"), Some(3.0));
    assert_eq!(number_field(service_line, "cache_hits"), Some(1.0), "{service_line}");
    assert_eq!(number_field(service_line, "queue_depth"), Some(0.0));

    // Job rows: echo prefix + cache_hit + the report fields, ending in
    // wall_ms.
    let rows: Vec<&str> = out.lines().filter(|l| l.contains("\"job\"")).collect();
    assert_eq!(rows.len(), 3);
    let report_tail = [
        "algorithm",
        "n",
        "m",
        "edges",
        "weight",
        "lower_bound",
        "certified_ratio",
        "valid",
    ];
    for (row, algo_tail) in rows.iter().zip([
        &[
            "rounds",
            "measured_sc",
            "alpha",
            "beta",
            "pass_cost",
            "fallbacks",
            "wall_ms",
        ][..],
        &[
            "rounds",
            "measured_sc",
            "alpha",
            "beta",
            "pass_cost",
            "fallbacks",
            "wall_ms",
        ][..],
        &["rounds", "guarantee", "wall_ms"][..],
    ]) {
        let mut want: Vec<String> = ["job", "family", "requested_n", "seed", "cache_hit"]
            .map(String::from)
            .to_vec();
        want.extend(report_tail.iter().map(|s| s.to_string()));
        want.extend(algo_tail.iter().map(|s| s.to_string()));
        assert_eq!(keys_of(row), want, "serve row schema drifted: {row}");
    }
    // Exactly one of the two duplicates is the cache hit (*which* one
    // claims the key first is a worker-scheduling race under 2 workers),
    // and the rows are byte-identical once the nondeterministic bits —
    // wall_ms and the flag itself — are stripped.
    let hit_count = rows[..2].iter().filter(|r| r.contains("\"cache_hit\": true")).count();
    assert_eq!(
        hit_count, 1,
        "one duplicate misses, the other hits:\n{}\n{}",
        rows[0], rows[1]
    );
    let stripped = |row: &str, id: &str| {
        strip_wall_ms(row)
            .replace("\"cache_hit\": true", "\"cache_hit\": _")
            .replace("\"cache_hit\": false", "\"cache_hit\": _")
            .replace(id, "\"job\": _")
    };
    assert_eq!(stripped(rows[0], "\"job\": 0"), stripped(rows[1], "\"job\": 1"));

    // Failed jobs keep the echo prefix and report an "error" field.
    let bad_jobs = dir.join("bad_jobs.json");
    std::fs::write(
        &bad_jobs,
        "[\n  {\"family\": \"grid\", \"n\": 36, \"algorithm\": \"mystery\"}\n]\n",
    )
    .expect("write jobs file");
    let (out, err, ok) = decss(&["serve", "--jobs", bad_jobs.to_str().expect("utf8 path")]);
    assert!(!ok, "a failing job must fail the exit status");
    assert!(err.contains("1 of 1 jobs failed"), "{err}");
    let row = out.lines().find(|l| l.contains("\"job\"")).expect("error row");
    assert_eq!(keys_of(row), ["job", "family", "requested_n", "seed", "error"]);
    assert!(string_field(row, "error")
        .expect("error field")
        .contains("unknown algorithm"));

    // A compacted (single-line) job array is rejected loudly instead of
    // silently collapsing into one merged job.
    let compact = dir.join("compact_jobs.json");
    std::fs::write(
        &compact,
        "[{\"family\": \"grid\", \"n\": 36, \"algorithm\": \"shortcut\"},\
         {\"family\": \"grid\", \"n\": 64, \"algorithm\": \"improved\"}]\n",
    )
    .expect("write jobs file");
    let (_, err, ok) = decss(&["serve", "--jobs", compact.to_str().expect("utf8 path")]);
    assert!(!ok);
    assert!(err.contains("one job object per line"), "{err}");

    // A present-but-malformed optional knob (here `"fail_edges":2`,
    // missing the dialect's space after the colon) errors loudly — a
    // silently dropped knob would change what the job means.
    let malformed = dir.join("malformed_jobs.json");
    std::fs::write(
        &malformed,
        "[\n  {\"family\": \"grid\", \"n\": 36, \"algorithm\": \"shortcut\", \"fail_edges\":2}\n]\n",
    )
    .expect("write jobs file");
    let (_, err, ok) = decss(&["serve", "--jobs", malformed.to_str().expect("utf8 path")]);
    assert!(!ok);
    assert!(err.contains("malformed \"fail_edges\""), "{err}");
}

#[test]
fn delta_job_rows_pin_the_incremental_schema() {
    use decss::graphs::gen;
    use decss::tree::RootedTree;

    // The exact graph serve builds for {family: grid, n: 36, seed: 2}
    // (max_weight defaults to 64): a raised non-tree edge can never
    // flip the MST, so the job must take the incremental path without
    // a fallback.
    let g = gen::grid(6, 6, 64, 2);
    let tree = RootedTree::mst(&g);
    let edge = g
        .edge_ids()
        .find(|&e| !tree.is_tree_edge(e))
        .expect("a grid has non-tree edges");
    let weight = g.weight(edge) + 7;

    let dir = std::env::temp_dir().join("decss-golden-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let jobs_path = dir.join("delta_jobs.json");
    std::fs::write(
        &jobs_path,
        format!(
            "[\n  {{\"family\": \"grid\", \"n\": 36, \"seed\": 2, \"algorithm\": \"shortcut\", \
             \"deltas\": [\"rw({e},{weight})\"]}},\n  {{\"family\": \"grid\", \"n\": 36, \
             \"seed\": 2, \"algorithm\": \"shortcut\", \"deltas\": [\"rw({e},{weight})\"]}}\n]\n",
            e = edge.index(),
        ),
    )
    .expect("write jobs file");
    let (out, err, ok) = decss(&["serve", "--jobs", jobs_path.to_str().expect("utf8 path")]);
    assert!(ok, "delta serve failed: {err}");

    // Delta rows carry the report's incremental block and the chained
    // fingerprint, wedged (in that order) between the solver fields and
    // the trailing wall_ms.
    let rows: Vec<&str> = out.lines().filter(|l| l.contains("\"job\"")).collect();
    assert_eq!(rows.len(), 2);
    let want: Vec<String> = [
        "job",
        "family",
        "requested_n",
        "seed",
        "cache_hit",
        "algorithm",
        "n",
        "m",
        "edges",
        "weight",
        "lower_bound",
        "certified_ratio",
        "valid",
        "rounds",
        "measured_sc",
        "alpha",
        "beta",
        "pass_cost",
        "fallbacks",
        "incremental",
        "parts_redone",
        "levels_redone",
        "fell_back",
        "fingerprint",
        "wall_ms",
    ]
    .map(String::from)
    .to_vec();
    for row in &rows {
        assert_eq!(keys_of(row), want, "delta row schema drifted: {row}");
        assert!(
            row.contains("\"incremental\": {\"parts_redone\": "),
            "incremental block shape drifted: {row}"
        );
        assert!(
            row.contains("\"fell_back\": false"),
            "a raised non-tree edge fell back: {row}"
        );
        assert!(
            number_field(row, "fingerprint").is_some(),
            "fingerprint must be emitted: {row}"
        );
    }
    // Resubmitting the same delta batch chains onto the mutated
    // fingerprint: the duplicate job is a cache hit (single worker, so
    // deterministically the second row).
    assert!(rows[0].contains("\"cache_hit\": false"), "{}", rows[0]);
    assert!(rows[1].contains("\"cache_hit\": true"), "{}", rows[1]);
    // And the two reports agree byte-for-byte once wall_ms and the row
    // echo are stripped.
    let stripped = |row: &str, id: &str| {
        strip_wall_ms(row)
            .replace("\"cache_hit\": true", "\"cache_hit\": _")
            .replace("\"cache_hit\": false", "\"cache_hit\": _")
            .replace(id, "\"job\": _")
    };
    assert_eq!(stripped(rows[0], "\"job\": 0"), stripped(rows[1], "\"job\": 1"));
}
