//! Cross-crate integration tests: both algorithms end-to-end on every
//! family, guarantee checks against exact optima, and determinism.

use decss::baselines;
use decss::core::{approximate_two_ecss, TapConfig, TwoEcssConfig, Variant};
use decss::graphs::{algo, gen};
use decss::shortcuts::{shortcut_two_ecss, ShortcutConfig};

#[test]
fn both_algorithms_are_valid_on_every_family() {
    for family in gen::Family::ALL {
        let g = gen::instance(family, 48, 40, 21);
        let first = approximate_two_ecss(&g, &TwoEcssConfig::default())
            .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(
            algo::two_edge_connected_in(&g, first.edges.iter().copied()),
            "{family}: first algorithm output invalid"
        );
        let second = shortcut_two_ecss(&g, &ShortcutConfig::default())
            .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(
            algo::two_edge_connected_in(&g, second.edges.iter().copied()),
            "{family}: second algorithm output invalid"
        );
        // Both share the same MST substrate.
        assert_eq!(first.mst_weight, second.mst_weight, "{family}");
    }
}

#[test]
fn improved_guarantee_holds_against_exact_optimum() {
    // Theorem 1.1: weight <= (5 + eps) * OPT. Verified on every tiny
    // instance where the exact solver is feasible.
    let config = TwoEcssConfig { tap: TapConfig { epsilon: 0.25, variant: Variant::Improved } };
    for seed in 0..12 {
        let g = gen::sparse_two_ec(8, 3, 16, seed);
        if g.m() > baselines::exact_ecss::MAX_EDGES {
            continue;
        }
        let res = approximate_two_ecss(&g, &config).expect("2EC");
        let (_, opt) = baselines::exact_two_ecss(&g).expect("2EC");
        assert!(
            res.total_weight() as f64 <= 5.25 * opt as f64 + 1e-9,
            "seed {seed}: {} > 5.25 * {opt}",
            res.total_weight()
        );
        assert!(res.total_weight() >= opt, "seed {seed}: beat the optimum?!");
    }
}

#[test]
fn basic_guarantee_holds_against_exact_optimum() {
    let config = TwoEcssConfig { tap: TapConfig { epsilon: 0.5, variant: Variant::Basic } };
    for seed in 0..8 {
        let g = gen::sparse_two_ec(8, 3, 16, seed);
        if g.m() > baselines::exact_ecss::MAX_EDGES {
            continue;
        }
        let res = approximate_two_ecss(&g, &config).expect("2EC");
        let (_, opt) = baselines::exact_two_ecss(&g).expect("2EC");
        assert!(
            res.total_weight() as f64 <= 9.5 * opt as f64 + 1e-9,
            "seed {seed}: {} > 9.5 * {opt}",
            res.total_weight()
        );
    }
}

#[test]
fn tap_guarantee_holds_against_exact_tap() {
    for seed in 0..8 {
        let g = gen::tree_plus_chords(12, 6, 20, seed);
        let tree_ids: Vec<decss::graphs::EdgeId> = (0..11).map(decss::graphs::EdgeId).collect();
        let tree = decss::tree::RootedTree::new(&g, decss::graphs::VertexId(0), &tree_ids);
        let candidates = g.m() - 11;
        if candidates > baselines::exact_tap::MAX_CANDIDATES {
            continue;
        }
        let res = decss::core::approximate_tap(&g, &tree, &TapConfig::default()).expect("2EC");
        let (_, opt) = baselines::exact_tap(&g, &tree).expect("feasible");
        assert!(
            res.weight as f64 <= 4.25 * opt as f64 + 1e-9,
            "seed {seed}: TAP {} > 4.25 * {opt}",
            res.weight
        );
        assert!(res.weight >= opt);
    }
}

#[test]
fn outputs_are_deterministic() {
    let g = gen::sparse_two_ec(64, 48, 50, 9);
    let a = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    let b = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.ledger.total_rounds(), b.ledger.total_rounds());
    // The shortcut algorithm is randomized but seeded.
    let s1 = shortcut_two_ecss(&g, &ShortcutConfig::default()).expect("2EC");
    let s2 = shortcut_two_ecss(&g, &ShortcutConfig::default()).expect("2EC");
    assert_eq!(s1.edges, s2.edges);
}

#[test]
fn round_counts_beat_tree_height_on_path_like_instances() {
    // The whole point of the paper vs Censor-Hillel & Dory [4]: rounds ~
    // (D + sqrt n) polylog, not the MST height h (which [4] pays and
    // which is ~n here by construction: the light edges form a
    // Hamiltonian path, while chords keep the *communication* diameter
    // moderate).
    let n: u32 = 512;
    let mut b = decss::graphs::GraphBuilder::new(n as usize);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1, 1).unwrap(); // MST path
    }
    b.add_edge(n - 1, 0, 1000).unwrap(); // closing the cycle, heavy
    for k in 1..8 {
        b.add_edge(k * n / 8, (k * n / 8 + n / 2) % n, 900).unwrap(); // shortcuts
    }
    let g = b.build().unwrap();
    assert!(algo::is_two_edge_connected(&g));

    let res = approximate_two_ecss(&g, &TwoEcssConfig::default()).expect("2EC");
    let tree = decss::tree::RootedTree::mst(&g);
    let height = g.vertices().map(|v| tree.depth(v)).max().unwrap() as u64;
    assert!(height >= n as u64 - 1, "MST is not the path");

    // An h-based algorithm pays at least h * log^2(n) over its sweeps;
    // we must come in well under that.
    let log2 = (n as f64).log2();
    let budget = (height as f64 * log2 * log2) as u64;
    assert!(
        res.ledger.total_rounds() < budget,
        "rounds {} not below the height-based budget {}",
        res.ledger.total_rounds(),
        budget
    );
}
