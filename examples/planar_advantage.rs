//! Theorem 1.2 in action: on well-behaved topologies the shortcut-based
//! algorithm's cost parameter is the diameter, not `D + √n`.
//!
//! All 12 solves below share one [`SolverSession`] — the scratch the
//! shortcut pipeline needs is allocated once and reused across every
//! family and size (the heavy-traffic path).
//!
//! ```sh
//! cargo run --example planar_advantage
//! ```

use decss::graphs::{algo, gen};
use decss::solver::{SolveRequest, SolverSession};

fn report(session: &mut SolverSession, name: &str, g: &decss::graphs::Graph) {
    let d = algo::diameter(g);
    let res = session.solve(g, &SolveRequest::new("shortcut")).expect("2EC input");
    let sc = res.measured_sc.expect("shortcut pipeline reports SC");
    println!(
        "{name:<22} n={:<5} D={:<4} sqrt(n)={:<6.1} measured SC={sc:<5} SC/D={:<6.2} rounds={}",
        g.n(),
        d,
        (g.n() as f64).sqrt(),
        sc as f64 / d.max(1) as f64,
        res.rounds.expect("distributed pipeline")
    );
}

fn main() {
    println!("shortcut complexity by topology (Theorem 1.2):\n");
    let mut session = SolverSession::new();
    for n in [100usize, 256, 400] {
        report(
            &mut session,
            "outerplanar disk",
            &gen::outerplanar_disk(n, 1.0, 50, 1),
        );
        report(&mut session, "grid (planar)", &{
            let side = (n as f64).sqrt() as usize;
            gen::grid(side, side, 50, 1)
        });
        report(&mut session, "caterpillar", &gen::caterpillar_two_ec(n / 2, 2, 50, 1));
        report(&mut session, "broom (bad case)", &gen::broom_two_ec(n, 50, 1));
        println!();
    }
    println!(
        "reading: on every family the *fragment* partitions the algorithm uses\n\
         keep SC near the diameter — on well-behaved topologies that diameter is\n\
         tiny, which is the paper's Õ(D) regime. The worst-case Ω(√n) behaviour\n\
         needs adversarial partitions on the Das Sarma shape; run\n\
         `cargo run -p decss-bench --bin experiments -- e5` to see that side."
    );
}
