//! Theorem 1.2 in action: on well-behaved topologies the shortcut-based
//! algorithm's cost parameter is the diameter, not `D + √n`.
//!
//! ```sh
//! cargo run --example planar_advantage
//! ```

use decss::graphs::{algo, gen};
use decss::shortcuts::{shortcut_two_ecss, ShortcutConfig};

fn report(name: &str, g: &decss::graphs::Graph) {
    let d = algo::diameter(g);
    let res = shortcut_two_ecss(g, &ShortcutConfig::default()).expect("2EC input");
    println!(
        "{name:<22} n={:<5} D={:<4} sqrt(n)={:<6.1} measured SC={:<5} SC/D={:<6.2} rounds={}",
        g.n(),
        d,
        (g.n() as f64).sqrt(),
        res.measured_sc,
        res.measured_sc as f64 / d.max(1) as f64,
        res.ledger.total_rounds()
    );
}

fn main() {
    println!("shortcut complexity by topology (Theorem 1.2):\n");
    for n in [100usize, 256, 400] {
        report("outerplanar disk", &gen::outerplanar_disk(n, 1.0, 50, 1));
        report("grid (planar)", &{
            let side = (n as f64).sqrt() as usize;
            gen::grid(side, side, 50, 1)
        });
        report("caterpillar", &gen::caterpillar_two_ec(n / 2, 2, 50, 1));
        report("broom (bad case)", &gen::broom_two_ec(n, 50, 1));
        println!();
    }
    println!(
        "reading: on every family the *fragment* partitions the algorithm uses\n\
         keep SC near the diameter — on well-behaved topologies that diameter is\n\
         tiny, which is the paper's Õ(D) regime. The worst-case Ω(√n) behaviour\n\
         needs adversarial partitions on the Das Sarma shape; run\n\
         `cargo run -p decss-bench --bin experiments -- e5` to see that side."
    );
}
