//! A tour of the CONGEST simulator: the message-level substrate under
//! the paper's algorithms, with per-protocol round/message accounting.
//!
//! ```sh
//! cargo run --example congest_simulator
//! ```

use decss::congest::protocols::{bfs, boruvka, broadcast, convergecast, leader, pipeline};
use decss::graphs::{algo, gen};

fn main() {
    let g = gen::grid(8, 8, 40, 11);
    println!(
        "network: 8x8 grid, n = {}, m = {}, diameter = {}\n",
        g.n(),
        g.m(),
        algo::diameter(&g)
    );

    // 1. Leader election.
    let (boss, r) = leader::elect_leader(&g);
    println!("leader election       -> {boss}  [{r}]");

    // 2. BFS tree from the leader.
    let (tree, r) = bfs::distributed_bfs(&g, boss);
    println!(
        "BFS tree (depth {})    -> spans: {}  [{r}]",
        tree.depth(),
        tree.spans_all()
    );

    // 3. Broadcast + convergecast over the MST.
    let mst = algo::minimum_spanning_tree(&g).expect("connected");
    let overlay = broadcast::TreeOverlay::from_edges(&g, boss, &mst);
    let (values, r) = broadcast::broadcast(&g, &overlay, 7);
    println!(
        "broadcast(7)          -> everyone got 7: {}  [{r}]",
        values.iter().all(|&v| v == 7)
    );
    let degrees: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
    let (total, r) = convergecast::convergecast(&g, &overlay, &degrees, convergecast::Agg::Sum);
    println!("convergecast(sum deg) -> {total} (= 2m = {})  [{r}]", 2 * g.m());

    // 4. Pipelined collection: 3 items per vertex to the root.
    let items: Vec<Vec<u64>> = g.vertices().map(|v| vec![v.0 as u64; 3]).collect();
    let (collected, r) = pipeline::collect_items(&g, &overlay, &items);
    println!("pipelined collection  -> {} items at root  [{r}]", collected.len());

    // 5. Distributed Borůvka MST.
    let (dist_mst, r) = boruvka::distributed_mst(&g);
    println!("Boruvka MST           -> matches Kruskal: {}  [{r}]", dist_mst == mst);

    println!(
        "\nevery protocol respected the per-edge bandwidth budget of {} words/round.",
        decss::congest::DEFAULT_BANDWIDTH
    );
}
