//! Quickstart: build a network, run the (5+ε)-approximation, inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use decss::core::{approximate_two_ecss, TapConfig, TwoEcssConfig, Variant};
use decss::graphs::{algo, gen};

fn main() {
    // A random 2-edge-connected network: 120 routers, ~240 links with
    // costs in 1..=100.
    let network = gen::sparse_two_ec(120, 120, 100, 42);
    println!(
        "network: {} vertices, {} edges, diameter {}",
        network.n(),
        network.m(),
        algo::diameter(&network)
    );

    let config = TwoEcssConfig { tap: TapConfig { epsilon: 0.25, variant: Variant::Improved } };
    let result = approximate_two_ecss(&network, &config).expect("input is 2-edge-connected");

    println!(
        "2-ECSS: {} edges, weight {} = MST {} + augmentation {}",
        result.edges.len(),
        result.total_weight(),
        result.mst_weight,
        result.augmentation_weight
    );
    println!(
        "certified within {:.2}x of optimal (guarantee vs true optimum: {:.2}x)",
        result.certified_ratio(),
        config.tap.two_ecss_guarantee()
    );
    println!("simulated CONGEST rounds: {}", result.ledger.total_rounds());
    println!("round breakdown:");
    for (op, inv, rounds) in result.ledger.breakdown() {
        println!("  {op:<24} x{inv:<4} {rounds} rounds");
    }

    // The defining property: the output stays connected under any single
    // link failure.
    assert!(algo::two_edge_connected_in(&network, result.edges.iter().copied()));
    println!("verified: output is spanning and survives any single link failure.");
}
