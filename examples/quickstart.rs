//! Quickstart: build a network, solve it through the unified API,
//! inspect the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use decss::graphs::{algo, gen};
use decss::solver::{SolveRequest, SolverSession, TraceLevel};

fn main() {
    // A random 2-edge-connected network: 120 routers, ~240 links with
    // costs in 1..=100.
    let network = gen::sparse_two_ec(120, 120, 100, 42);
    println!(
        "network: {} vertices, {} edges, diameter {}",
        network.n(),
        network.m(),
        algo::diameter(&network)
    );

    // One session, one request, one report — any registry algorithm.
    let mut session = SolverSession::new();
    let request = SolveRequest::new("improved").epsilon(0.25).trace(TraceLevel::Full);
    let report = session.solve(&network, &request).expect("input is 2-edge-connected");

    println!(
        "2-ECSS: {} edges, weight {} = MST {} + augmentation {}",
        report.edges.len(),
        report.weight,
        report.mst_weight.expect("MST+augmentation pipeline"),
        report.augmentation_weight.expect("MST+augmentation pipeline"),
    );
    println!(
        "certified within {:.2}x of optimal (guarantee vs true optimum: {:.2}x)",
        report.certified_ratio(),
        report.guarantee.expect("Theorem 1.1 has one"),
    );
    println!(
        "simulated CONGEST rounds: {}",
        report.rounds.expect("distributed pipeline")
    );
    println!("round breakdown (TraceLevel::Full):");
    for line in report.trace.iter().filter(|l| l.starts_with("rounds ")) {
        println!("  {line}");
    }

    // The defining property: the output stays connected under any single
    // link failure — the session verified it (and we can re-check).
    assert!(report.valid);
    assert!(algo::two_edge_connected_in(&network, report.edges.iter().copied()));
    println!("verified: output is spanning and survives any single link failure.");
}
