//! Failure drill: kill every single link of the computed 2-ECSS in turn
//! and verify the network stays connected — then do the same to the MST
//! and watch it fall apart.
//!
//! ```sh
//! cargo run --example failure_drill
//! ```

use decss::core::{approximate_two_ecss, TwoEcssConfig};
use decss::graphs::{algo, gen, EdgeId};

fn survives_all_single_failures(g: &decss::graphs::Graph, edges: &[EdgeId]) -> (usize, usize) {
    let mut survived = 0;
    for drop in edges {
        let rest = edges.iter().copied().filter(|e| e != drop);
        if algo::is_connected_subgraph(g, rest) {
            survived += 1;
        }
    }
    (survived, edges.len())
}

fn main() {
    let network = gen::gnp_two_ec(150, 0.05, 100, 3);
    println!(
        "network: {} nodes, {} links, diameter {}",
        network.n(),
        network.m(),
        algo::diameter(&network)
    );

    let result = approximate_two_ecss(&network, &TwoEcssConfig::default()).expect("2EC input");

    let (ok_2ecss, total_2ecss) = survives_all_single_failures(&network, &result.edges);
    println!(
        "\n2-ECSS ({} edges, weight {}): survives {ok_2ecss}/{total_2ecss} single-link failures",
        result.edges.len(),
        result.total_weight()
    );
    assert_eq!(ok_2ecss, total_2ecss, "a 2-ECSS must survive them all");

    let (ok_mst, total_mst) = survives_all_single_failures(&network, &result.mst_edges);
    println!(
        "MST alone ({} edges, weight {}): survives {ok_mst}/{total_mst} single-link failures",
        result.mst_edges.len(),
        result.mst_weight
    );
    assert_eq!(ok_mst, 0, "every tree edge is a bridge");

    println!(
        "\nredundancy premium: +{} weight (+{:.1}%) for full single-failure resilience",
        result.augmentation_weight,
        100.0 * result.augmentation_weight as f64 / result.mst_weight as f64
    );
}
