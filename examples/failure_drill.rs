//! Failure drill: kill every single link of the computed 2-ECSS in turn
//! and verify the network stays connected — then do the same to the MST
//! and watch it fall apart. Finally, degrade the network itself with the
//! request's seeded failure injection and re-solve on what is left.
//!
//! ```sh
//! cargo run --example failure_drill
//! ```

use decss::graphs::{algo, gen, EdgeId};
use decss::solver::{SolveRequest, SolverSession};

fn survives_all_single_failures(g: &decss::graphs::Graph, edges: &[EdgeId]) -> (usize, usize) {
    let mut survived = 0;
    for drop in edges {
        let rest = edges.iter().copied().filter(|e| e != drop);
        if algo::is_connected_subgraph(g, rest) {
            survived += 1;
        }
    }
    (survived, edges.len())
}

fn main() {
    let network = gen::gnp_two_ec(150, 0.05, 100, 3);
    println!(
        "network: {} nodes, {} links, diameter {}",
        network.n(),
        network.m(),
        algo::diameter(&network)
    );

    let mut session = SolverSession::new();
    let report = session
        .solve(&network, &SolveRequest::new("improved"))
        .expect("2EC input");
    let mst_weight = report.mst_weight.expect("MST+augmentation pipeline");
    let augmentation_weight = report.augmentation_weight.expect("MST+augmentation pipeline");

    let (ok_2ecss, total_2ecss) = survives_all_single_failures(&network, &report.edges);
    println!(
        "\n2-ECSS ({} edges, weight {}): survives {ok_2ecss}/{total_2ecss} single-link failures",
        report.edges.len(),
        report.weight
    );
    assert_eq!(ok_2ecss, total_2ecss, "a 2-ECSS must survive them all");

    let mst: Vec<EdgeId> = {
        let tree = decss::tree::RootedTree::mst(&network);
        network.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect()
    };
    let (ok_mst, total_mst) = survives_all_single_failures(&network, &mst);
    println!(
        "MST alone ({} edges, weight {mst_weight}): survives {ok_mst}/{total_mst} single-link failures",
        mst.len()
    );
    assert_eq!(ok_mst, 0, "every tree edge is a bridge");

    println!(
        "\nredundancy premium: +{augmentation_weight} weight (+{:.1}%) for full single-failure resilience",
        100.0 * augmentation_weight as f64 / mst_weight as f64
    );

    // Now the drill the API automates: the network loses links (but
    // stays 2-edge-connectable) and we re-plan on the damaged topology.
    println!("\ndegrading the network itself (seeded failure injection, re-solving):");
    for k in [5u32, 15, 30] {
        let report = session
            .solve(&network, &SolveRequest::new("improved").fail_edges(k).seed(7))
            .expect("damaged network still has a 2-ECSS");
        println!(
            "  {} links down -> plan over {} links: weight {} ({} edges), valid: {}",
            report.failed_edges.len(),
            report.m,
            report.weight,
            report.edges.len(),
            report.valid
        );
        assert!(report.valid);
    }
}
