//! The unweighted special case (Section 3.6.1): augmenting a spanning
//! tree with the fewest extra links, via the simple MIS + petals
//! algorithm, compared against the exact optimum.
//!
//! ```sh
//! cargo run --example unweighted_tap
//! ```

use decss::baselines;
use decss::core::algorithm::approximate_tap_unweighted;
use decss::graphs::{algo, gen, EdgeId};
use decss::tree::RootedTree;

fn main() {
    println!("unweighted tree augmentation: MIS + petals (Section 3.6.1)\n");
    for seed in 0..5 {
        // A branching random tree (edge ids 0..n-1) with unit-cost chords.
        let g = gen::tree_plus_chords(14, 6, 1, seed).unweighted();
        let tree_ids: Vec<EdgeId> = (0..13).map(EdgeId).collect();
        let tree = RootedTree::new(&g, decss::graphs::VertexId(0), &tree_ids);
        let candidates = g.m() - (g.n() - 1);
        if candidates > baselines::exact_tap::MAX_CANDIDATES {
            continue;
        }
        let res = approximate_tap_unweighted(&g, &tree).expect("2EC input");
        let (_, exact) = baselines::exact_tap(&g, &tree).expect("feasible");
        let tree_edges: Vec<EdgeId> = g.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect();
        let all: Vec<EdgeId> = tree_edges
            .iter()
            .copied()
            .chain(res.augmentation.iter().copied())
            .collect();
        assert!(algo::two_edge_connected_in(&g, all));
        println!(
            "seed {seed}: n={:<3} candidates={:<3} ours={:<3} exact={:<3} ratio={:.2} (bound 4) anchors={}",
            g.n(),
            candidates,
            res.augmentation.len(),
            exact,
            res.augmentation.len() as f64 / exact as f64,
            res.stats.anchors
        );
    }
    println!("\nevery output verified 2-edge-connected; ratio stays well under the bound.");

    // The same pipeline as a registry citizen: `unweighted` runs on the
    // MST and answers through the unified SolveReport schema (here
    // against the exact optimum on a tiny instance).
    use decss::solver::{SolveRequest, SolverSession};
    let g = gen::sparse_two_ec(8, 3, 1, 0).unweighted();
    let mut session = SolverSession::new();
    let ours = session
        .solve(&g, &SolveRequest::new("unweighted"))
        .expect("2EC input");
    let exact = session.solve(&g, &SolveRequest::new("exact")).expect("tiny instance");
    assert!(ours.valid && exact.valid);
    println!(
        "registry check (n={}): unweighted picks {} edges vs exact optimum {} ({} rounds simulated)",
        g.n(),
        ours.edges.len(),
        exact.edges.len(),
        ours.rounds.expect("distributed pipeline"),
    );
}
