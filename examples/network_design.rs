//! Network design scenario from the paper's introduction: leasing
//! redundant backbone links at minimum cost.
//!
//! An ISP's topology offers many candidate links, each with a leasing
//! price. A spanning tree is the cheapest way to connect everyone — but
//! one cut fiber partitions the network. This example compares the MST
//! against every 2-ECSS algorithm in the solver registry on the same
//! topology, and shows what each buys under failures.
//!
//! ```sh
//! cargo run --example network_design
//! ```

use decss::graphs::{algo, gen, EdgeId};
use decss::solver::{SolveError, SolveRequest, SolverSession};
use decss::tree::RootedTree;

fn count_disconnecting_failures(g: &decss::graphs::Graph, chosen: &[EdgeId]) -> usize {
    // How many single-link failures disconnect the chosen subgraph?
    let mut bad = 0;
    for drop in chosen {
        let rest = chosen.iter().copied().filter(|e| e != drop);
        if !algo::is_connected_subgraph(g, rest) {
            bad += 1;
        }
    }
    bad
}

fn main() {
    // A metro backbone: a 10x10 grid of POPs with leasing costs.
    let topology = gen::grid(10, 10, 500, 7);
    println!(
        "topology: {} POPs, {} candidate links, total catalogue price {}",
        topology.n(),
        topology.m(),
        topology.total_weight()
    );

    // The non-redundant strawman: MST only.
    let tree = RootedTree::mst(&topology);
    let mst: Vec<EdgeId> = topology.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect();
    let mst_cost = topology.weight_of(mst.iter().copied());
    println!(
        "\n{:<16} cost {mst_cost:>6}  disconnecting single failures: {}/{}",
        "mst-only",
        count_disconnecting_failures(&topology, &mst),
        mst.len()
    );

    // Every registered 2-ECSS algorithm on the same topology: one
    // session, one loop — the registry is the comparison harness.
    let mut session = SolverSession::new();
    let names: Vec<&str> = session.registry().names().collect();
    for name in names {
        match session.solve(&topology, &SolveRequest::new(name)) {
            Ok(report) => {
                println!(
                    "{name:<16} cost {:>6}  (+{:.1}% over MST)  disconnecting failures: {}  certified: {:.2}x",
                    report.weight,
                    100.0 * (report.weight - mst_cost) as f64 / mst_cost as f64,
                    count_disconnecting_failures(&topology, &report.edges),
                    report.certified_ratio()
                );
                assert!(report.valid);
            }
            // The exact solver caps out far below 180 candidate links.
            Err(SolveError::TooLarge { algorithm, limit, got, unit }) => {
                println!("{name:<16} skipped ({algorithm} handles <= {limit} {unit}, topology has {got})");
            }
            Err(e) => panic!("{name}: {e}"),
        }
    }

    println!(
        "\nreading: every solver pays a premium over the MST for single-failure\n\
         resilience; the paper's `improved` pipeline certifies its distance to\n\
         the optimal design, the baselines only promise their ratio classes."
    );
}
