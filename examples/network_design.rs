//! Network design scenario from the paper's introduction: leasing
//! redundant backbone links at minimum cost.
//!
//! An ISP's topology offers many candidate links, each with a leasing
//! price. A spanning tree is the cheapest way to connect everyone — but
//! one cut fiber partitions the network. This example compares the cost
//! of (a) the MST alone, (b) MST + paper's (5+ε) augmentation, (c) the
//! greedy O(log n) baseline, and shows what each buys under failures.
//!
//! ```sh
//! cargo run --example network_design
//! ```

use decss::baselines;
use decss::core::{approximate_two_ecss, TwoEcssConfig};
use decss::graphs::{algo, gen, EdgeId};
use decss::tree::RootedTree;

fn count_disconnecting_failures(g: &decss::graphs::Graph, chosen: &[EdgeId]) -> usize {
    // How many single-link failures disconnect the chosen subgraph?
    let mut bad = 0;
    for drop in chosen {
        let rest = chosen.iter().copied().filter(|e| e != drop);
        if !algo::is_connected_subgraph(g, rest) {
            bad += 1;
        }
    }
    bad
}

fn main() {
    // A metro backbone: a 10x10 grid of POPs with leasing costs.
    let topology = gen::grid(10, 10, 500, 7);
    println!(
        "topology: {} POPs, {} candidate links, total catalogue price {}",
        topology.n(),
        topology.m(),
        topology.total_weight()
    );

    // (a) MST only.
    let tree = RootedTree::mst(&topology);
    let mst: Vec<EdgeId> = topology.edge_ids().filter(|&e| tree.is_tree_edge(e)).collect();
    let mst_cost = topology.weight_of(mst.iter().copied());
    println!(
        "\nMST only: cost {mst_cost}, disconnecting single failures: {}/{}",
        count_disconnecting_failures(&topology, &mst),
        mst.len()
    );

    // (b) the paper's algorithm.
    let result = approximate_two_ecss(&topology, &TwoEcssConfig::default()).expect("grid is 2EC");
    println!(
        "paper (5+eps): cost {} (+{:.1}% over MST), disconnecting failures: {}",
        result.total_weight(),
        100.0 * result.augmentation_weight as f64 / mst_cost as f64,
        count_disconnecting_failures(&topology, &result.edges)
    );

    // (c) greedy baseline.
    let (greedy_aug, greedy_cost) = baselines::greedy_tap(&topology, &tree).expect("grid is 2EC");
    let mut greedy_edges = mst.clone();
    greedy_edges.extend(greedy_aug);
    println!(
        "greedy O(log n): cost {}, disconnecting failures: {}",
        mst_cost + greedy_cost,
        count_disconnecting_failures(&topology, &greedy_edges)
    );

    println!(
        "\ncertified: paper's cost is within {:.2}x of any possible design",
        result.certified_ratio()
    );
}
